package store

import (
	"sort"

	"repro/internal/rdf"
)

// Delta accumulates live writes on top of a sealed base store without
// touching it. New terms are interned into an extension dictionary
// whose IDs continue where the base dictionary ends, so an ID is
// globally unique across base+delta and the base's columns, offset
// tables, and views stay byte-identical while the delta grows.
//
// A Delta is single-writer: the ingest path serializes Add calls.
// Readers never see the Delta itself — they see immutable DeltaSnap
// snapshots taken after each acknowledged batch.
type Delta struct {
	base      *Store
	baseTerms int
	extTerms  []rdf.Term
	extByTerm map[rdf.Term]ID
	triples   []IDTriple            // pending new triples, insertion order
	set       map[IDTriple]struct{} // dedup within the delta
}

// NewDelta returns an empty delta over a built base store.
func NewDelta(base *Store) *Delta {
	base.ensure()
	return &Delta{
		base:      base,
		baseTerms: base.NumTerms(),
		extByTerm: make(map[rdf.Term]ID),
		set:       make(map[IDTriple]struct{}),
	}
}

// Intern returns the combined-space ID for t: the base ID when the base
// dictionary knows the term, otherwise an extension ID past the end of
// the base dictionary, assigned in first-seen order — exactly the order
// a from-scratch store interning base-then-delta would assign.
func (d *Delta) Intern(t rdf.Term) ID {
	if id, ok := d.base.Lookup(t); ok {
		return id
	}
	if id, ok := d.extByTerm[t]; ok {
		return id
	}
	d.extTerms = append(d.extTerms, t)
	id := ID(d.baseTerms + len(d.extTerms))
	d.extByTerm[t] = id
	return id
}

// Add interns t's terms and appends the triple unless it already exists
// in the base store or the delta. It reports whether the triple was new.
func (d *Delta) Add(t rdf.Triple) (IDTriple, bool) {
	it := IDTriple{S: d.Intern(t.S), P: d.Intern(t.P), O: d.Intern(t.O)}
	if _, dup := d.set[it]; dup {
		return it, false
	}
	// A triple whose three terms all resolve to base IDs may already be
	// in the base; one offset lookup plus two binary searches decides.
	if int(it.S) <= d.baseTerms && int(it.P) <= d.baseTerms && int(it.O) <= d.baseTerms {
		if d.base.Count(it.S, it.P, it.O) > 0 {
			return it, false
		}
	}
	d.set[it] = struct{}{}
	d.triples = append(d.triples, it)
	return it, true
}

// Len returns the number of pending new triples.
func (d *Delta) Len() int { return len(d.triples) }

// NumExtTerms returns the number of extension-dictionary terms.
func (d *Delta) NumExtTerms() int { return len(d.extTerms) }

// Snapshot freezes the delta's current contents into an immutable
// DeltaSnap that concurrent readers may hold indefinitely. The delta
// itself keeps accumulating; later snapshots supersede earlier ones.
func (d *Delta) Snapshot() *DeltaSnap {
	n := len(d.triples)
	snap := &DeltaSnap{
		base:      d.base,
		baseTerms: d.baseTerms,
		extTerms:  d.extTerms[:len(d.extTerms):len(d.extTerms)],
		triples:   append([]IDTriple(nil), d.triples...),
	}
	// The lookup map is copied: the writer keeps mutating d.extByTerm
	// after the snapshot is published to readers.
	snap.extByTerm = make(map[rdf.Term]ID, len(d.extByTerm))
	for t, id := range d.extByTerm {
		snap.extByTerm[t] = id
	}

	sorted := make([]IDTriple, n)
	copy(sorted, d.triples)
	sortTriples(sorted, lessSPO)
	snap.spo = colsFromTriples(sorted)
	sortTriples(sorted, lessPOS)
	snap.pos = colsFromTriples(sorted)
	sortTriples(sorted, lessOSP)
	snap.osp = colsFromTriples(sorted)
	return snap
}

func sortTriples(ts []IDTriple, less func(a, b IDTriple) bool) {
	sort.Slice(ts, func(i, j int) bool { return less(ts[i], ts[j]) })
}

func colsFromTriples(ts []IDTriple) cols {
	c := makeCols(len(ts))
	for i, t := range ts {
		c.s[i], c.p[i], c.o[i] = t.S, t.P, t.O
	}
	return c
}

// DeltaSnap is an immutable snapshot of a Delta: the pending triples in
// all three sort orders plus the extension dictionary. It serves the
// same Range/Term/Lookup contract as Store so the executor can overlay
// it on the base; all methods are safe for concurrent use and safe on a
// nil receiver (a nil DeltaSnap is the empty delta).
type DeltaSnap struct {
	base          *Store
	baseTerms     int
	extTerms      []rdf.Term
	extByTerm     map[rdf.Term]ID
	triples       []IDTriple // insertion order (WAL order), for replay/merge bookkeeping
	spo, pos, osp cols
}

// Len returns the number of triples in the snapshot.
func (d *DeltaSnap) Len() int {
	if d == nil {
		return 0
	}
	return len(d.spo.s)
}

// Empty reports whether the snapshot holds no triples.
func (d *DeltaSnap) Empty() bool { return d.Len() == 0 }

// BaseTerms returns the size of the base dictionary beneath the
// extension terms.
func (d *DeltaSnap) BaseTerms() int {
	if d == nil {
		return 0
	}
	return d.baseTerms
}

// NumTerms returns the combined dictionary size (base + extension).
func (d *DeltaSnap) NumTerms() int {
	if d == nil {
		return 0
	}
	return d.baseTerms + len(d.extTerms)
}

// NumExtTerms returns the number of extension terms.
func (d *DeltaSnap) NumExtTerms() int {
	if d == nil {
		return 0
	}
	return len(d.extTerms)
}

// Term resolves a combined-space ID: base IDs go to the base store,
// extension IDs to the extension dictionary.
func (d *DeltaSnap) Term(id ID) rdf.Term {
	if d != nil && int(id) > d.baseTerms {
		return d.extTerms[int(id)-d.baseTerms-1]
	}
	if d == nil {
		panic("store: Term on nil DeltaSnap with no base")
	}
	return d.base.Term(id)
}

// ExtTerm resolves an extension ID only; ok is false for base IDs.
func (d *DeltaSnap) ExtTerm(id ID) (rdf.Term, bool) {
	if d == nil || int(id) <= d.baseTerms {
		return rdf.Term{}, false
	}
	return d.extTerms[int(id)-d.baseTerms-1], true
}

// Lookup finds a term in the extension dictionary only. Callers try the
// base store first.
func (d *DeltaSnap) Lookup(t rdf.Term) (ID, bool) {
	if d == nil {
		return 0, false
	}
	id, ok := d.extByTerm[t]
	return id, ok
}

// Triples returns the snapshot's triples in insertion (WAL) order. The
// slice is owned by the snapshot and must not be modified.
func (d *DeltaSnap) Triples() []IDTriple {
	if d == nil {
		return nil
	}
	return d.triples
}

// Range returns the view of delta triples matching the pattern, in the
// same ordering Store.Range would use for it, so interleaving a base
// view with a delta view preserves each ordering's sort. It performs no
// heap allocation; on a nil or empty snapshot it returns the empty view.
func (d *DeltaSnap) Range(sp, pp, op ID) View {
	if d == nil || len(d.spo.s) == 0 {
		return View{}
	}
	switch {
	case sp != Wildcard:
		if op != Wildcard && pp == Wildcard {
			lo, hi := colRange(d.osp.o, 0, len(d.osp.o), op)
			lo, hi = colRange(d.osp.s, lo, hi, sp)
			return d.osp.view(lo, hi)
		}
		lo, hi := colRange(d.spo.s, 0, len(d.spo.s), sp)
		if pp != Wildcard {
			lo, hi = colRange(d.spo.p, lo, hi, pp)
			if op != Wildcard {
				lo, hi = colRange(d.spo.o, lo, hi, op)
			}
		}
		return d.spo.view(lo, hi)
	case pp != Wildcard:
		lo, hi := colRange(d.pos.p, 0, len(d.pos.p), pp)
		if op != Wildcard {
			lo, hi = colRange(d.pos.o, lo, hi, op)
		}
		return d.pos.view(lo, hi)
	case op != Wildcard:
		lo, hi := colRange(d.osp.o, 0, len(d.osp.o), op)
		return d.osp.view(lo, hi)
	default:
		return d.spo.view(0, len(d.spo.s))
	}
}

// Count returns the number of delta triples matching the pattern.
func (d *DeltaSnap) Count(sp, pp, op ID) int { return d.Range(sp, pp, op).Len() }

// MergeDelta builds a new sealed store holding base ∪ delta: the
// dictionary is the base terms followed by the extension terms (IDs are
// preserved, so graph classifications and cached candidate IDs stay
// valid), and each SoA ordering is a linear two-way merge of the base's
// sorted columns with the delta's — no re-sort of the base. The result
// is bit-identical to rebuilding a store from scratch over the same
// triples interned in the same order.
//
// On a snapshot-backed base the dictionary is materialized on the heap
// (the one-time cost of the first swap after a snapshot boot).
func MergeDelta(base *Store, d *DeltaSnap) *Store {
	base.ensure()
	nb := base.Len()
	nd := d.Len()
	baseTerms := base.NumTerms()

	m := &Store{
		terms:  make([]rdf.Term, baseTerms+d.NumExtTerms()),
		byTerm: make(map[rdf.Term]ID, baseTerms+d.NumExtTerms()),
	}
	if base.dict != nil {
		for i := 0; i < baseTerms; i++ {
			m.terms[i] = base.dict.term(ID(i + 1))
		}
	} else {
		copy(m.terms, base.terms)
	}
	if d != nil {
		copy(m.terms[baseTerms:], d.extTerms)
	}
	for i, t := range m.terms {
		m.byTerm[t] = ID(i + 1)
	}

	n := nb + nd
	m.spo = mergeCols(base.spo, dcols(d, 0), n, lessSPO)
	m.pos = mergeCols(base.pos, dcols(d, 1), n, lessPOS)
	m.osp = mergeCols(base.osp, dcols(d, 2), n, lessOSP)

	// The AoS triples slice mirrors the merged SPO ordering; graph
	// construction and offline export read it.
	m.triples = make([]IDTriple, n)
	for i := range m.triples {
		m.triples[i] = IDTriple{S: m.spo.s[i], P: m.spo.p[i], O: m.spo.o[i]}
	}

	m.subjOff = buildOffsets(m.spo.s, len(m.terms))
	m.predOff = buildOffsets(m.pos.p, len(m.terms))
	m.objOff = buildOffsets(m.osp.o, len(m.terms))
	return m
}

func dcols(d *DeltaSnap, ordering int) cols {
	if d == nil {
		return cols{}
	}
	switch ordering {
	case 0:
		return d.spo
	case 1:
		return d.pos
	default:
		return d.osp
	}
}

// mergeCols linearly merges two column sets already sorted by less.
func mergeCols(a, b cols, n int, less func(x, y IDTriple) bool) cols {
	out := makeCols(n)
	i, j, k := 0, 0, 0
	for i < len(a.s) && j < len(b.s) {
		ta := IDTriple{S: a.s[i], P: a.p[i], O: a.o[i]}
		tb := IDTriple{S: b.s[j], P: b.p[j], O: b.o[j]}
		if less(tb, ta) {
			out.s[k], out.p[k], out.o[k] = tb.S, tb.P, tb.O
			j++
		} else {
			out.s[k], out.p[k], out.o[k] = ta.S, ta.P, ta.O
			i++
		}
		k++
	}
	for ; i < len(a.s); i, k = i+1, k+1 {
		out.s[k], out.p[k], out.o[k] = a.s[i], a.p[i], a.o[i]
	}
	for ; j < len(b.s); j, k = j+1, k+1 {
		out.s[k], out.p[k], out.o[k] = b.s[j], b.p[j], b.o[j]
	}
	return out
}
