package store

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://x/" + s) }

func buildExample(t *testing.T) *Store {
	t.Helper()
	st := New()
	st.AddAll(rdf.MustParseFig1())
	return st
}

func TestInternIsIdempotent(t *testing.T) {
	st := New()
	a := st.Intern(iri("a"))
	b := st.Intern(iri("b"))
	if a == b {
		t.Fatal("distinct terms share an ID")
	}
	if st.Intern(iri("a")) != a {
		t.Fatal("re-interning changed the ID")
	}
	if got := st.Term(a); got != iri("a") {
		t.Fatalf("Term(%d) = %v, want %v", a, got, iri("a"))
	}
	if _, ok := st.Lookup(iri("missing")); ok {
		t.Fatal("Lookup of unknown term should fail")
	}
	if st.NumTerms() != 2 {
		t.Fatalf("NumTerms = %d, want 2", st.NumTerms())
	}
}

func TestTermPanicsOnInvalidID(t *testing.T) {
	st := New()
	defer func() {
		if recover() == nil {
			t.Fatal("Term(0) should panic")
		}
	}()
	st.Term(0)
}

func TestAddDeduplicates(t *testing.T) {
	st := New()
	tr := rdf.NewTriple(iri("s"), iri("p"), iri("o"))
	st.Add(tr)
	st.Add(tr)
	st.Add(tr)
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after duplicate adds", st.Len())
	}
}

func TestMatchAllPatternShapes(t *testing.T) {
	st := buildExample(t)
	s, _ := st.Lookup(rdf.NewIRI(rdf.ExampleNS + "pub1"))
	p, _ := st.Lookup(rdf.NewIRI(rdf.ExampleNS + "author"))
	o, _ := st.Lookup(rdf.NewIRI(rdf.ExampleNS + "re1"))
	typ, _ := st.Lookup(rdf.NewIRI(rdf.RDFType))

	cases := []struct {
		name    string
		s, p, o ID
		want    int
	}{
		{"fully bound", s, p, o, 1},
		{"s+p", s, p, Wildcard, 2}, // pub1 has two authors
		{"s+o", s, Wildcard, o, 1},
		{"s only", s, Wildcard, Wildcard, 5},   // type, author×2, year, hasProject
		{"p+o", p, Wildcard, Wildcard, 2},      // placeholder, fixed below
		{"p only", Wildcard, typ, Wildcard, 8}, // 8 typed entities in Fig. 1
		{"o only", Wildcard, Wildcard, o, 2},   // pub1 author re1, re1 is also subject of type... no: object only
		{"unbound", Wildcard, Wildcard, Wildcard, st.Len()},
	}
	// fix the p+o case properly: author edges to re1
	cases[4] = struct {
		name    string
		s, p, o ID
		want    int
	}{"p+o", Wildcard, p, o, 1}
	// o-only: triples with object re1: pub1-author-re1 only.
	cases[6].want = 1

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			n := 0
			it := st.Match(c.s, c.p, c.o)
			for it.Next() {
				tr := it.Triple()
				if c.s != Wildcard && tr.S != c.s {
					t.Errorf("S mismatch: %+v", tr)
				}
				if c.p != Wildcard && tr.P != c.p {
					t.Errorf("P mismatch: %+v", tr)
				}
				if c.o != Wildcard && tr.O != c.o {
					t.Errorf("O mismatch: %+v", tr)
				}
				n++
			}
			if n != c.want {
				t.Errorf("matched %d triples, want %d", n, c.want)
			}
			if cnt := st.Count(c.s, c.p, c.o); cnt != c.want {
				t.Errorf("Count = %d, want %d", cnt, c.want)
			}
		})
	}
}

func TestMatchEmptyStore(t *testing.T) {
	st := New()
	it := st.Match(Wildcard, Wildcard, Wildcard)
	if it.Next() {
		t.Fatal("empty store should match nothing")
	}
	if st.Count(1, 2, 3) != 0 {
		t.Fatal("Count on empty store should be 0")
	}
}

func TestAddAfterBuildRebuilds(t *testing.T) {
	st := New()
	st.Add(rdf.NewTriple(iri("a"), iri("p"), iri("b")))
	if st.Len() != 1 {
		t.Fatal("first build wrong")
	}
	st.Add(rdf.NewTriple(iri("a"), iri("p"), iri("c")))
	if st.Len() != 2 {
		t.Fatal("store did not rebuild after post-build add")
	}
	p, _ := st.Lookup(iri("p"))
	if st.Count(Wildcard, p, Wildcard) != 2 {
		t.Fatal("index stale after rebuild")
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	st := New()
	tr := rdf.NewTriple(iri("s"), iri("p"), rdf.NewLiteral("v"))
	enc := st.Add(tr)
	if st.Decode(enc) != tr {
		t.Fatalf("Decode(%+v) != original", enc)
	}
}

// TestMatchAgainstNaive cross-checks index lookups against a linear scan
// on randomly generated triple sets, over all 8 pattern shapes.
func TestMatchAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 20; round++ {
		st := New()
		var all []IDTriple
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			tr := rdf.NewTriple(
				iri(string(rune('a'+rng.Intn(8)))),
				iri("p"+string(rune('0'+rng.Intn(4)))),
				iri(string(rune('n'+rng.Intn(8)))),
			)
			st.Add(tr)
		}
		seen := map[IDTriple]bool{}
		st.ForEach(func(tr IDTriple) {
			if seen[tr] {
				t.Fatal("duplicate triple after dedup")
			}
			seen[tr] = true
			all = append(all, tr)
		})
		// Probe random patterns.
		for probe := 0; probe < 50; probe++ {
			var pat IDTriple
			if len(all) > 0 {
				pat = all[rng.Intn(len(all))]
			}
			sp, pp, op := pat.S, pat.P, pat.O
			if rng.Intn(2) == 0 {
				sp = Wildcard
			}
			if rng.Intn(2) == 0 {
				pp = Wildcard
			}
			if rng.Intn(2) == 0 {
				op = Wildcard
			}
			want := 0
			for _, tr := range all {
				if (sp == Wildcard || tr.S == sp) && (pp == Wildcard || tr.P == pp) && (op == Wildcard || tr.O == op) {
					want++
				}
			}
			got := 0
			it := st.Match(sp, pp, op)
			for it.Next() {
				got++
			}
			if got != want {
				t.Fatalf("pattern (%d,%d,%d): got %d, want %d", sp, pp, op, got, want)
			}
			if c := st.Count(sp, pp, op); c != want {
				t.Fatalf("Count(%d,%d,%d) = %d, want %d", sp, pp, op, c, want)
			}
		}
	}
}

// TestInternLookupProperty: Intern then Lookup returns the same ID, and
// Term inverts Intern.
func TestInternLookupProperty(t *testing.T) {
	st := New()
	f := func(v string, kind uint8) bool {
		var tm rdf.Term
		switch kind % 3 {
		case 0:
			tm = rdf.NewIRI("http://x/" + v)
		case 1:
			tm = rdf.NewLiteral(v)
		default:
			tm = rdf.NewBlank("b" + v)
		}
		id := st.Intern(tm)
		id2, ok := st.Lookup(tm)
		return ok && id == id2 && st.Term(id) == tm
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTriplesSortedSPO(t *testing.T) {
	st := buildExample(t)
	ts := st.Triples()
	for i := 1; i < len(ts); i++ {
		if !lessSPO(ts[i-1], ts[i]) && ts[i-1] != ts[i] {
			if lessSPO(ts[i], ts[i-1]) {
				t.Fatalf("triples not in SPO order at %d", i)
			}
		}
	}
}
