package store

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rdf"
)

func roundTrip(t *testing.T, st *Store) *Store {
	t.Helper()
	var buf bytes.Buffer
	n, err := st.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestSnapshotRoundTrip(t *testing.T) {
	st := New()
	st.AddAll(rdf.MustParseFig1())
	st.Add(rdf.NewTriple(
		rdf.NewIRI("http://x/s"),
		rdf.NewIRI("http://x/p"),
		rdf.NewLangLiteral("héllo\nworld", "de")))
	st.Add(rdf.NewTriple(
		rdf.NewBlank("b1"),
		rdf.NewIRI("http://x/p"),
		rdf.NewTypedLiteral("42", rdf.XSDInteger)))

	back := roundTrip(t, st)
	if back.Len() != st.Len() {
		t.Fatalf("triples: got %d, want %d", back.Len(), st.Len())
	}
	if back.NumTerms() != st.NumTerms() {
		t.Fatalf("terms: got %d, want %d", back.NumTerms(), st.NumTerms())
	}
	// Every original triple must be present and decodable.
	st.ForEach(func(tr IDTriple) {
		orig := st.Decode(tr)
		s, ok1 := back.Lookup(orig.S)
		p, ok2 := back.Lookup(orig.P)
		o, ok3 := back.Lookup(orig.O)
		if !ok1 || !ok2 || !ok3 {
			t.Fatalf("terms of %v missing after round trip", orig)
		}
		if back.Count(s, p, o) != 1 {
			t.Fatalf("triple %v missing after round trip", orig)
		}
	})
	// The loaded store must serve queries (indexes rebuilt lazily).
	typ, _ := back.Lookup(rdf.NewIRI(rdf.RDFType))
	if back.Count(Wildcard, typ, Wildcard) != 8 {
		t.Fatal("loaded store query results differ")
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	back := roundTrip(t, New())
	if back.Len() != 0 || back.NumTerms() != 0 {
		t.Fatal("empty store round trip should stay empty")
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	st := New()
	st.AddAll(rdf.MustParseFig1())
	var buf bytes.Buffer
	if _, err := st.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] = 'X'
			return c
		}},
		{"payload flip", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0xFF
			return c
		}},
		{"checksum flip", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-1] ^= 0xFF
			return c
		}},
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"trailing garbage detected via checksum", func(b []byte) []byte {
			return append(append([]byte(nil), b...), 0xAB, 0xCD)
		}},
		{"empty", func(b []byte) []byte { return nil }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadSnapshot(bytes.NewReader(c.mutate(good))); err == nil {
				t.Fatal("corrupted snapshot accepted")
			}
		})
	}
}

func TestSnapshotRejectsNonSnapshot(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("<a> <b> <c> .\n")); err == nil {
		t.Fatal("N-Triples accepted as snapshot")
	}
}

func TestSnapshotLargeStore(t *testing.T) {
	st := New()
	ns := "http://big/"
	for i := 0; i < 5000; i++ {
		st.Add(rdf.NewTriple(
			rdf.NewIRI(ns+"s"+string(rune('a'+i%26))+string(rune('a'+(i/26)%26))),
			rdf.NewIRI(ns+"p"+string(rune('a'+i%7))),
			rdf.NewLiteral("value with some text "+string(rune('a'+i%26))),
		))
	}
	back := roundTrip(t, st)
	if back.Len() != st.Len() {
		t.Fatalf("got %d triples, want %d", back.Len(), st.Len())
	}
}
