package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/rdf"
)

// Snapshot format: a compact binary serialization of the dictionary and
// the deduplicated triples. It exists so the expensive part of the
// off-line phase — parsing millions of triples of RDF text — happens
// once; the derived indexes (permutations, summary graph, keyword index)
// rebuild quickly on load.
//
//	magic   "RDFSNAP1"              8 bytes (not checksummed)
//	terms   uvarint count, then per term:
//	          kind                  1 byte
//	          value, datatype, lang length-prefixed (uvarint) strings
//	triples uvarint count, then per triple S,P,O as uvarint IDs
//	crc32   IEEE checksum of the payload (terms + triples), 4 bytes
const snapshotMagic = "RDFSNAP1"

// WriteTo serializes the store. It implements io.WriterTo.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	s.ensure()
	var total int64
	n, err := io.WriteString(w, snapshotMagic)
	total += int64(n)
	if err != nil {
		return total, err
	}

	crc := crc32.NewIEEE()
	cw := &countingWriter{w: io.MultiWriter(w, crc)}
	bw := bufio.NewWriter(cw)

	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		k := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:k])
		return err
	}
	writeString := func(str string) error {
		if err := writeUvarint(uint64(len(str))); err != nil {
			return err
		}
		_, err := bw.WriteString(str)
		return err
	}

	if err := writeUvarint(uint64(len(s.terms))); err != nil {
		return total + cw.n, err
	}
	for _, t := range s.terms {
		if err := bw.WriteByte(byte(t.Kind)); err != nil {
			return total + cw.n, err
		}
		for _, str := range [3]string{t.Value, t.Datatype, t.Lang} {
			if err := writeString(str); err != nil {
				return total + cw.n, err
			}
		}
	}
	if err := writeUvarint(uint64(len(s.triples))); err != nil {
		return total + cw.n, err
	}
	for _, tr := range s.triples {
		for _, id := range [3]ID{tr.S, tr.P, tr.O} {
			if err := writeUvarint(uint64(id)); err != nil {
				return total + cw.n, err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return total + cw.n, err
	}
	total += cw.n

	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	n, err = w.Write(sum[:])
	return total + int64(n), err
}

// ReadSnapshot deserializes a store written by WriteTo. The checksum and
// all structural invariants (ID ranges, term kinds) are verified before
// any data is trusted.
func ReadSnapshot(r io.Reader) (*Store, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("store: reading snapshot: %w", err)
	}
	if len(data) < len(snapshotMagic)+4 {
		return nil, fmt.Errorf("store: snapshot truncated (%d bytes)", len(data))
	}
	if string(data[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("store: not a snapshot file (magic %q)", data[:len(snapshotMagic)])
	}
	payload := data[len(snapshotMagic) : len(data)-4]
	wantSum := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(payload); got != wantSum {
		return nil, fmt.Errorf("store: snapshot checksum mismatch (file %08x, computed %08x)", wantSum, got)
	}

	br := bytes.NewReader(payload)
	readString := func() (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		if n > uint64(br.Len()) {
			return "", fmt.Errorf("store: string length %d exceeds remaining payload", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}

	st := New()
	nTerms, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("store: reading term count: %w", err)
	}
	if nTerms > uint64(len(payload)) {
		return nil, fmt.Errorf("store: unreasonable term count %d", nTerms)
	}
	st.terms = make([]rdf.Term, 0, nTerms)
	for i := uint64(0); i < nTerms; i++ {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("store: reading term %d: %w", i, err)
		}
		if rdf.Kind(kind) > rdf.Blank {
			return nil, fmt.Errorf("store: term %d has invalid kind %d", i, kind)
		}
		var fields [3]string
		for f := range fields {
			fields[f], err = readString()
			if err != nil {
				return nil, fmt.Errorf("store: reading term %d: %w", i, err)
			}
		}
		t := rdf.Term{Kind: rdf.Kind(kind), Value: fields[0], Datatype: fields[1], Lang: fields[2]}
		st.terms = append(st.terms, t)
		st.byTerm[t] = ID(len(st.terms))
	}

	nTriples, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("store: reading triple count: %w", err)
	}
	if nTriples > uint64(len(payload)) {
		return nil, fmt.Errorf("store: unreasonable triple count %d", nTriples)
	}
	st.triples = make([]IDTriple, 0, nTriples)
	for i := uint64(0); i < nTriples; i++ {
		var ids [3]ID
		for f := range ids {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("store: reading triple %d: %w", i, err)
			}
			if v == 0 || v > nTerms {
				return nil, fmt.Errorf("store: triple %d references invalid term %d", i, v)
			}
			ids[f] = ID(v)
		}
		st.triples = append(st.triples, IDTriple{S: ids[0], P: ids[1], O: ids[2]})
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("store: %d trailing bytes after snapshot payload", br.Len())
	}
	st.dirty = true // rebuild permutation indexes on first use
	return st, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
