package store

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/rdf"
)

func randomTriples(rng *rand.Rand, n, subjects, preds, objects int) []rdf.Triple {
	ts := make([]rdf.Triple, n)
	for i := range ts {
		ts[i] = rdf.Triple{
			S: iri(fmt.Sprintf("s%d", rng.Intn(subjects))),
			P: iri(fmt.Sprintf("p%d", rng.Intn(preds))),
			O: iri(fmt.Sprintf("o%d", rng.Intn(objects))),
		}
	}
	return ts
}

func TestDeltaInterning(t *testing.T) {
	base := New()
	base.Add(rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")})
	base.Build()
	nb := base.NumTerms()

	d := NewDelta(base)
	if got := d.Intern(iri("a")); int(got) > nb {
		t.Fatalf("base term re-interned as extension ID %d", got)
	}
	x := d.Intern(iri("x"))
	y := d.Intern(iri("y"))
	if int(x) != nb+1 || int(y) != nb+2 {
		t.Fatalf("extension IDs not dense past base: x=%d y=%d base=%d", x, y, nb)
	}
	if again := d.Intern(iri("x")); again != x {
		t.Fatalf("re-intern changed ID: %d vs %d", again, x)
	}

	snap := d.Snapshot()
	if got := snap.Term(x); got != iri("x") {
		t.Fatalf("snapshot Term(%d) = %v", x, got)
	}
	if got := snap.Term(ID(1)); got != base.Term(1) {
		t.Fatalf("snapshot base Term mismatch")
	}
	if id, ok := snap.Lookup(iri("y")); !ok || id != y {
		t.Fatalf("snapshot Lookup(y) = %d,%v", id, ok)
	}
	if _, ok := snap.Lookup(iri("a")); ok {
		t.Fatalf("snapshot Lookup found a base term in the extension dict")
	}
}

func TestDeltaAddDedup(t *testing.T) {
	base := New()
	tr := rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")}
	base.Add(tr)
	base.Build()

	d := NewDelta(base)
	if _, added := d.Add(tr); added {
		t.Fatalf("base duplicate accepted")
	}
	fresh := rdf.Triple{S: iri("a"), P: iri("p"), O: iri("c")}
	if _, added := d.Add(fresh); !added {
		t.Fatalf("fresh triple rejected")
	}
	if _, added := d.Add(fresh); added {
		t.Fatalf("delta duplicate accepted")
	}
	if d.Len() != 1 {
		t.Fatalf("delta Len = %d, want 1", d.Len())
	}
}

func TestDeltaSnapshotIsImmutable(t *testing.T) {
	base := New()
	base.Add(rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")})
	base.Build()

	d := NewDelta(base)
	d.Add(rdf.Triple{S: iri("x"), P: iri("p"), O: iri("b")})
	snap := d.Snapshot()
	lenBefore := snap.Len()
	extBefore := snap.NumExtTerms()

	for i := 0; i < 50; i++ {
		d.Add(rdf.Triple{S: iri(fmt.Sprintf("n%d", i)), P: iri("p"), O: iri("b")})
	}
	if snap.Len() != lenBefore || snap.NumExtTerms() != extBefore {
		t.Fatalf("snapshot changed under later writes: len %d→%d ext %d→%d",
			lenBefore, snap.Len(), extBefore, snap.NumExtTerms())
	}
}

// enumerate all bound/wildcard pattern combinations over the combined
// dictionary and compare two Range implementations row by row.
func comparePatterns(t *testing.T, want *Store, got func(sp, pp, op ID) []IDTriple, numTerms int) {
	t.Helper()
	ids := []ID{Wildcard}
	for i := 1; i <= numTerms; i++ {
		ids = append(ids, ID(i))
	}
	for _, sp := range ids {
		for _, pp := range ids {
			for _, op := range ids {
				w := want.Range(sp, pp, op)
				g := got(sp, pp, op)
				if w.Len() != len(g) {
					t.Fatalf("pattern (%d,%d,%d): got %d rows, want %d", sp, pp, op, len(g), w.Len())
				}
				for i := range g {
					if w.Triple(i) != g[i] {
						t.Fatalf("pattern (%d,%d,%d) row %d: got %v want %v", sp, pp, op, i, g[i], w.Triple(i))
					}
				}
			}
		}
	}
}

func TestMergeDeltaEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 20; round++ {
		baseTs := randomTriples(rng, 30+rng.Intn(40), 6, 3, 6)
		deltaTs := randomTriples(rng, 1+rng.Intn(25), 9, 4, 9) // wider ID space → new terms

		base := New()
		base.AddAll(baseTs)
		base.Build()

		d := NewDelta(base)
		for _, tr := range deltaTs {
			d.Add(tr)
		}
		snap := d.Snapshot()
		merged := MergeDelta(base, snap)

		// The reference: a from-scratch store fed base order then delta order.
		ref := New()
		ref.AddAll(baseTs)
		ref.AddAll(deltaTs)
		ref.Build()

		if merged.NumTerms() != ref.NumTerms() {
			t.Fatalf("round %d: dictionary size %d vs %d", round, merged.NumTerms(), ref.NumTerms())
		}
		for id := 1; id <= ref.NumTerms(); id++ {
			if merged.Term(ID(id)) != ref.Term(ID(id)) {
				t.Fatalf("round %d: term %d differs: %v vs %v", round, id, merged.Term(ID(id)), ref.Term(ID(id)))
			}
		}
		if merged.Len() != ref.Len() {
			t.Fatalf("round %d: triple count %d vs %d", round, merged.Len(), ref.Len())
		}
		comparePatterns(t, ref, func(sp, pp, op ID) []IDTriple {
			v := merged.Range(sp, pp, op)
			out := make([]IDTriple, v.Len())
			for i := range out {
				out[i] = v.Triple(i)
			}
			return out
		}, ref.NumTerms())
	}
}

func TestDeltaSnapRangeMatchesMergedMinusBase(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	baseTs := randomTriples(rng, 40, 5, 3, 5)
	deltaTs := randomTriples(rng, 20, 8, 4, 8)

	base := New()
	base.AddAll(baseTs)
	base.Build()

	d := NewDelta(base)
	for _, tr := range deltaTs {
		d.Add(tr)
	}
	snap := d.Snapshot()
	merged := MergeDelta(base, snap)

	// For every pattern, merging the base view and the delta view by the
	// ordering's comparator must reproduce the merged store's view —
	// this is exactly the executor's overlay contract.
	comparePatterns(t, merged, func(sp, pp, op ID) []IDTriple {
		bv := base.Range(sp, pp, op)
		dv := snap.Range(sp, pp, op)
		less := orderingLess(sp, pp, op)
		out := make([]IDTriple, 0, bv.Len()+dv.Len())
		i, j := 0, 0
		for i < bv.Len() && j < dv.Len() {
			a, b := bv.Triple(i), dv.Triple(j)
			if less(b, a) {
				out = append(out, b)
				j++
			} else {
				out = append(out, a)
				i++
			}
		}
		for ; i < bv.Len(); i++ {
			out = append(out, bv.Triple(i))
		}
		for ; j < dv.Len(); j++ {
			out = append(out, dv.Triple(j))
		}
		return out
	}, merged.NumTerms())
}

// orderingLess mirrors Range's ordering selection for a pattern.
func orderingLess(sp, pp, op ID) func(a, b IDTriple) bool {
	switch {
	case sp != Wildcard:
		if op != Wildcard && pp == Wildcard {
			return lessOSP
		}
		return lessSPO
	case pp != Wildcard:
		return lessPOS
	case op != Wildcard:
		return lessOSP
	default:
		return lessSPO
	}
}

func TestNilDeltaSnap(t *testing.T) {
	var d *DeltaSnap
	if d.Len() != 0 || !d.Empty() || d.NumTerms() != 0 {
		t.Fatalf("nil DeltaSnap not empty")
	}
	if v := d.Range(1, 2, 3); v.Len() != 0 {
		t.Fatalf("nil DeltaSnap Range non-empty")
	}
	if _, ok := d.Lookup(iri("x")); ok {
		t.Fatalf("nil DeltaSnap Lookup found a term")
	}
}
