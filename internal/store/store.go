// Package store implements an in-memory, dictionary-encoded RDF triple
// store with SPO/POS/OSP indexes. It plays the role of the "underlying
// database engine" storage layer in the paper (Jena/Sesame/Oracle single
// triple table, Sec. II): terms are interned to dense integer IDs, and
// triple-pattern lookups with any combination of bound positions are served
// from materialized struct-of-arrays orderings by offset-table lookup plus
// binary search on one contiguous column.
//
// Memory layout: each ordering (SPO, POS, OSP) is a sorted copy of the
// triple set stored as three parallel []ID columns. A pattern lookup walks
// no permutation indirection — the leading bound component resolves to a
// [lo,hi) range through a per-ID offset table in O(1), further bound
// components narrow the range by binary search over a single column, and
// the result is a View: three sub-slice headers, allocation-free, whose
// elements are read with unit stride.
//
// Writes (Add/Intern) are not safe for concurrent use; after the indexes
// are built (first Match/Count/Range call, or an explicit Build), any
// number of goroutines may read concurrently as long as no further writes
// occur.
package store

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/rdf"
)

// ID is a dense dictionary identifier for an interned term. 0 is invalid
// and doubles as the wildcard in triple patterns.
type ID uint32

// Wildcard matches any term in a position of Match/Count patterns.
const Wildcard ID = 0

// IDTriple is a dictionary-encoded triple.
type IDTriple struct {
	S, P, O ID
}

// cols is one materialized ordering of the triple set: three parallel
// columns holding the S, P, and O components of every triple, sorted by
// that ordering's component sequence.
type cols struct {
	s, p, o []ID
}

// Store is the triple store. The zero value is not usable; call New.
type Store struct {
	mu     sync.RWMutex
	terms  []rdf.Term      // terms[id-1] is the term for id
	byTerm map[rdf.Term]ID // interning map

	// dict, when non-nil, is a snapshot-backed dictionary: terms and
	// byTerm are nil and every dictionary operation decodes lazily out
	// of mapped regions (see loadable.go). Such a store is read-only.
	dict *loadedDict

	triples []IDTriple // unique triples, in SPO order after Build

	// Struct-of-arrays sorted copies, one per ordering. spo duplicates
	// triples column-wise so every lookup path reads unit-stride columns.
	spo, pos, osp cols

	// Offset tables: for the leading component of each ordering, the
	// half-open row range of ID id is [off[id], off[id+1]). Length
	// NumTerms()+2 so id+1 never indexes out of range.
	subjOff []int32 // SPO rows per subject
	predOff []int32 // POS rows per predicate
	objOff  []int32 // OSP rows per object

	dirty bool
}

// New returns an empty store.
func New() *Store {
	return &Store{byTerm: make(map[rdf.Term]ID)}
}

// Intern returns the ID for term t, assigning a new one if necessary.
// It panics on a snapshot-backed store, which is read-only.
func (s *Store) Intern(t rdf.Term) ID {
	if s.dict != nil {
		panic("store: Intern on a read-only snapshot-backed store")
	}
	if id, ok := s.byTerm[t]; ok {
		return id
	}
	s.terms = append(s.terms, t)
	id := ID(len(s.terms))
	s.byTerm[t] = id
	return id
}

// Lookup returns the ID of t without interning it.
func (s *Store) Lookup(t rdf.Term) (ID, bool) {
	if s.dict != nil {
		return s.dict.lookup(t)
	}
	id, ok := s.byTerm[t]
	return id, ok
}

// Term returns the term for a valid ID. It panics on 0 or out-of-range IDs,
// which always indicate a programming error.
func (s *Store) Term(id ID) rdf.Term {
	if id == 0 || int(id) > s.NumTerms() {
		panic(fmt.Sprintf("store: invalid term ID %d (dictionary size %d)", id, s.NumTerms()))
	}
	if s.dict != nil {
		return s.dict.term(id)
	}
	return s.terms[id-1]
}

// NumTerms returns the dictionary size.
func (s *Store) NumTerms() int {
	if s.dict != nil {
		return len(s.dict.recs)
	}
	return len(s.terms)
}

// Add interns the triple's terms and appends the triple.
func (s *Store) Add(t rdf.Triple) IDTriple {
	it := IDTriple{S: s.Intern(t.S), P: s.Intern(t.P), O: s.Intern(t.O)}
	s.triples = append(s.triples, it)
	s.dirty = true
	return it
}

// AddAll adds every triple in ts.
func (s *Store) AddAll(ts []rdf.Triple) {
	for _, t := range ts {
		s.Add(t)
	}
}

// AddID appends an already-encoded triple. All three IDs must have been
// produced by Intern on this store.
func (s *Store) AddID(t IDTriple) {
	if s.dict != nil {
		panic("store: AddID on a read-only snapshot-backed store")
	}
	s.triples = append(s.triples, t)
	s.dirty = true
}

// Len returns the number of distinct triples (after deduplication).
func (s *Store) Len() int {
	if s.dict != nil {
		// Snapshot-backed: the column length is the triple count; the
		// AoS triples slice may not be materialized.
		return len(s.spo.s)
	}
	s.ensure()
	return len(s.triples)
}

// Decode converts an encoded triple back to terms.
func (s *Store) Decode(t IDTriple) rdf.Triple {
	return rdf.Triple{S: s.Term(t.S), P: s.Term(t.P), O: s.Term(t.O)}
}

// Build sorts the orderings and deduplicates triples. It is called
// implicitly by the first read; calling it explicitly makes the cost
// visible (e.g. when measuring index build time).
func (s *Store) Build() {
	s.ensure()
}

func (s *Store) ensure() {
	s.mu.RLock()
	dirty := s.dirty
	s.mu.RUnlock()
	if !dirty {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.dirty {
		return
	}
	s.rebuild()
	s.dirty = false
}

func (s *Store) rebuild() {
	// Sort by SPO and deduplicate in place.
	sort.Slice(s.triples, func(i, j int) bool { return lessSPO(s.triples[i], s.triples[j]) })
	uniq := s.triples[:0]
	var prev IDTriple
	for i, t := range s.triples {
		if i > 0 && t == prev {
			continue
		}
		uniq = append(uniq, t)
		prev = t
	}
	s.triples = uniq

	n := len(s.triples)

	// SPO columns are a straight column-wise copy of the sorted triples.
	s.spo = makeCols(n)
	for i, t := range s.triples {
		s.spo.s[i], s.spo.p[i], s.spo.o[i] = t.S, t.P, t.O
	}

	// POS and OSP: sort an index permutation, then gather into columns —
	// the permutation is build-time scratch and dropped afterwards.
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(i, j int) bool { return lessPOS(s.triples[idx[i]], s.triples[idx[j]]) })
	s.pos = makeCols(n)
	for i, j := range idx {
		t := s.triples[j]
		s.pos.s[i], s.pos.p[i], s.pos.o[i] = t.S, t.P, t.O
	}

	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(i, j int) bool { return lessOSP(s.triples[idx[i]], s.triples[idx[j]]) })
	s.osp = makeCols(n)
	for i, j := range idx {
		t := s.triples[j]
		s.osp.s[i], s.osp.p[i], s.osp.o[i] = t.S, t.P, t.O
	}

	s.subjOff = buildOffsets(s.spo.s, len(s.terms))
	s.predOff = buildOffsets(s.pos.p, len(s.terms))
	s.objOff = buildOffsets(s.osp.o, len(s.terms))
}

func makeCols(n int) cols {
	// One backing array keeps the three columns of an ordering adjacent.
	backing := make([]ID, 3*n)
	return cols{s: backing[:n:n], p: backing[n : 2*n : 2*n], o: backing[2*n:]}
}

// buildOffsets converts a sorted leading column into a per-ID offset
// table: rows with leading component id occupy [off[id], off[id+1]).
func buildOffsets(lead []ID, numTerms int) []int32 {
	off := make([]int32, numTerms+2)
	for _, id := range lead {
		off[id+1]++
	}
	for i := 1; i < len(off); i++ {
		off[i] += off[i-1]
	}
	return off
}

func lessSPO(a, b IDTriple) bool {
	if a.S != b.S {
		return a.S < b.S
	}
	if a.P != b.P {
		return a.P < b.P
	}
	return a.O < b.O
}

func lessPOS(a, b IDTriple) bool {
	if a.P != b.P {
		return a.P < b.P
	}
	if a.O != b.O {
		return a.O < b.O
	}
	return a.S < b.S
}

func lessOSP(a, b IDTriple) bool {
	if a.O != b.O {
		return a.O < b.O
	}
	if a.S != b.S {
		return a.S < b.S
	}
	return a.P < b.P
}

// View is the allocation-free result of a pattern lookup: three parallel
// sub-slices of one ordering's columns, covering exactly the matching
// triples in that ordering's sort order. A View is three slice headers
// passed by value; it stays valid as long as the store is not rebuilt.
type View struct {
	// S, P, O are the component columns of the matched rows. All three
	// have equal length; row i of the view is the triple
	// {S[i], P[i], O[i]}.
	S, P, O []ID
}

// Len returns the number of matched triples.
func (v View) Len() int { return len(v.S) }

// Triple returns row i of the view.
func (v View) Triple(i int) IDTriple { return IDTriple{S: v.S[i], P: v.P[i], O: v.O[i]} }

// Range returns the view of all triples matching the pattern; each
// position is either a concrete ID or Wildcard. The most selective
// available ordering is chosen exactly as Match always has:
//
//	S bound           → SPO
//	P bound (S free)  → POS
//	O bound only      → OSP
//	S+O bound, P free → OSP range on (O,S) with no extra filtering needed
//
// The leading bound component is resolved through an O(1) offset table;
// each further bound component narrows the row range by binary search on
// one contiguous column. Range performs no heap allocation.
func (s *Store) Range(sp, pp, op ID) View {
	s.ensure()
	switch {
	case sp != Wildcard:
		if op != Wildcard && pp == Wildcard {
			// (S,O): OSP on the (O,S) prefix.
			lo, hi := offsetRange(s.objOff, op)
			lo, hi = colRange(s.osp.s, lo, hi, sp)
			return s.osp.view(lo, hi)
		}
		lo, hi := offsetRange(s.subjOff, sp)
		if pp != Wildcard {
			lo, hi = colRange(s.spo.p, lo, hi, pp)
			if op != Wildcard {
				lo, hi = colRange(s.spo.o, lo, hi, op)
			}
		}
		return s.spo.view(lo, hi)
	case pp != Wildcard:
		lo, hi := offsetRange(s.predOff, pp)
		if op != Wildcard {
			lo, hi = colRange(s.pos.o, lo, hi, op)
		}
		return s.pos.view(lo, hi)
	case op != Wildcard:
		lo, hi := offsetRange(s.objOff, op)
		return s.osp.view(lo, hi)
	default:
		return s.spo.view(0, len(s.spo.s))
	}
}

func (c cols) view(lo, hi int) View {
	return View{S: c.s[lo:hi], P: c.p[lo:hi], O: c.o[lo:hi]}
}

// offsetRange resolves the row range of a leading component in O(1). An
// ID beyond the table (a store with no triples, e.g. a DictionaryView)
// yields the empty range.
func offsetRange(off []int32, id ID) (int, int) {
	if int(id)+1 >= len(off) {
		return 0, 0
	}
	return int(off[id]), int(off[id+1])
}

// colRange narrows [lo,hi) — within which col is sorted — to the rows
// whose col value equals v, by branch-light binary search.
func colRange(col []ID, lo, hi int, v ID) (int, int) {
	a, b := lo, hi
	for a < b {
		m := int(uint(a+b) >> 1)
		if col[m] < v {
			a = m + 1
		} else {
			b = m
		}
	}
	start := a
	b = hi
	for a < b {
		m := int(uint(a+b) >> 1)
		if col[m] <= v {
			a = m + 1
		} else {
			b = m
		}
	}
	return start, a
}

// Iterator walks the triples matched by a pattern. It is positioned before
// the first result; call Next until it returns false. New code should
// prefer Range, whose View costs no allocation; the iterator remains for
// callers that want the one-triple-at-a-time shape.
type Iterator struct {
	v   View
	i   int
	cur IDTriple
}

// Next advances to the next matching triple.
func (it *Iterator) Next() bool {
	if it.i >= it.v.Len() {
		return false
	}
	it.cur = it.v.Triple(it.i)
	it.i++
	return true
}

// Triple returns the triple at the current position.
func (it *Iterator) Triple() IDTriple { return it.cur }

// Match returns an iterator over all triples matching the pattern. It is
// Range boxed into an iterator: same index selection, same order.
func (s *Store) Match(sp, pp, op ID) *Iterator {
	return &Iterator{v: s.Range(sp, pp, op)}
}

// Count returns the exact number of triples matching the pattern: every
// bound-position combination maps to a contiguous row range of one of the
// three orderings, so this is at worst two binary searches.
func (s *Store) Count(sp, pp, op ID) int {
	return s.Range(sp, pp, op).Len()
}

// ForEach invokes f for every distinct triple in SPO order.
func (s *Store) ForEach(f func(IDTriple)) {
	if s.dict != nil {
		// Snapshot-backed: iterate the SPO columns directly instead of
		// materializing the AoS triples slice.
		for i := range s.spo.s {
			f(IDTriple{S: s.spo.s[i], P: s.spo.p[i], O: s.spo.o[i]})
		}
		return
	}
	s.ensure()
	for _, t := range s.triples {
		f(t)
	}
}

// Triples returns the deduplicated triples in SPO order. The returned
// slice is owned by the store and must not be modified. On a
// snapshot-backed store this materializes the AoS copy once (only
// offline consumers — baselines, legacy export — take this path).
func (s *Store) Triples() []IDTriple {
	if s.dict != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.triples == nil {
			ts := make([]IDTriple, len(s.spo.s))
			for i := range ts {
				ts[i] = IDTriple{S: s.spo.s[i], P: s.spo.p[i], O: s.spo.o[i]}
			}
			s.triples = ts
		}
		return s.triples
	}
	s.ensure()
	return s.triples
}

// DictionaryView returns a store that shares this store's interned
// dictionary (terms and IDs) but holds no triples: Term, Lookup, and
// NumTerms behave identically, Match, Count, and Range over it find
// nothing. The sharded coordinator keeps such a view as its global
// catalog — every term resolvable in the single-engine ID space — after
// the off-line build releases the triples themselves to the shards.
//
// The view aliases the parent's dictionary: neither the view nor the
// parent may intern further terms afterwards (treat both as frozen).
func (s *Store) DictionaryView() *Store {
	return &Store{terms: s.terms, byTerm: s.byTerm, dict: s.dict}
}
