// Package store implements an in-memory, dictionary-encoded RDF triple
// store with SPO/POS/OSP indexes. It plays the role of the "underlying
// database engine" storage layer in the paper (Jena/Sesame/Oracle single
// triple table, Sec. II): terms are interned to dense integer IDs, and
// triple-pattern lookups with any combination of bound positions are served
// from sorted permutation indexes by binary search.
//
// Writes (Add/Intern) are not safe for concurrent use; after the indexes
// are built (first Match/Count call, or an explicit Build), any number of
// goroutines may read concurrently as long as no further writes occur.
package store

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/rdf"
)

// ID is a dense dictionary identifier for an interned term. 0 is invalid
// and doubles as the wildcard in triple patterns.
type ID uint32

// Wildcard matches any term in a position of Match/Count patterns.
const Wildcard ID = 0

// IDTriple is a dictionary-encoded triple.
type IDTriple struct {
	S, P, O ID
}

// Store is the triple store. The zero value is not usable; call New.
type Store struct {
	mu     sync.RWMutex
	terms  []rdf.Term      // terms[id-1] is the term for id
	byTerm map[rdf.Term]ID // interning map

	triples []IDTriple // unique triples, in SPO order after Build
	spo     []int32    // permutation: triples sorted by (S,P,O) — identity after Build
	pos     []int32    // permutation: triples sorted by (P,O,S)
	osp     []int32    // permutation: triples sorted by (O,S,P)
	dirty   bool
}

// New returns an empty store.
func New() *Store {
	return &Store{byTerm: make(map[rdf.Term]ID)}
}

// Intern returns the ID for term t, assigning a new one if necessary.
func (s *Store) Intern(t rdf.Term) ID {
	if id, ok := s.byTerm[t]; ok {
		return id
	}
	s.terms = append(s.terms, t)
	id := ID(len(s.terms))
	s.byTerm[t] = id
	return id
}

// Lookup returns the ID of t without interning it.
func (s *Store) Lookup(t rdf.Term) (ID, bool) {
	id, ok := s.byTerm[t]
	return id, ok
}

// Term returns the term for a valid ID. It panics on 0 or out-of-range IDs,
// which always indicate a programming error.
func (s *Store) Term(id ID) rdf.Term {
	if id == 0 || int(id) > len(s.terms) {
		panic(fmt.Sprintf("store: invalid term ID %d (dictionary size %d)", id, len(s.terms)))
	}
	return s.terms[id-1]
}

// NumTerms returns the dictionary size.
func (s *Store) NumTerms() int { return len(s.terms) }

// Add interns the triple's terms and appends the triple.
func (s *Store) Add(t rdf.Triple) IDTriple {
	it := IDTriple{S: s.Intern(t.S), P: s.Intern(t.P), O: s.Intern(t.O)}
	s.triples = append(s.triples, it)
	s.dirty = true
	return it
}

// AddAll adds every triple in ts.
func (s *Store) AddAll(ts []rdf.Triple) {
	for _, t := range ts {
		s.Add(t)
	}
}

// AddID appends an already-encoded triple. All three IDs must have been
// produced by Intern on this store.
func (s *Store) AddID(t IDTriple) {
	s.triples = append(s.triples, t)
	s.dirty = true
}

// Len returns the number of distinct triples (after deduplication).
func (s *Store) Len() int {
	s.ensure()
	return len(s.triples)
}

// Decode converts an encoded triple back to terms.
func (s *Store) Decode(t IDTriple) rdf.Triple {
	return rdf.Triple{S: s.Term(t.S), P: s.Term(t.P), O: s.Term(t.O)}
}

// Build sorts the permutation indexes and deduplicates triples. It is
// called implicitly by the first read; calling it explicitly makes the
// cost visible (e.g. when measuring index build time).
func (s *Store) Build() {
	s.ensure()
}

func (s *Store) ensure() {
	s.mu.RLock()
	dirty := s.dirty
	s.mu.RUnlock()
	if !dirty {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.dirty {
		return
	}
	s.rebuild()
	s.dirty = false
}

func (s *Store) rebuild() {
	// Sort by SPO and deduplicate in place.
	sort.Slice(s.triples, func(i, j int) bool { return lessSPO(s.triples[i], s.triples[j]) })
	uniq := s.triples[:0]
	var prev IDTriple
	for i, t := range s.triples {
		if i > 0 && t == prev {
			continue
		}
		uniq = append(uniq, t)
		prev = t
	}
	s.triples = uniq

	n := len(s.triples)
	s.spo = make([]int32, n)
	s.pos = make([]int32, n)
	s.osp = make([]int32, n)
	for i := range s.spo {
		s.spo[i] = int32(i)
		s.pos[i] = int32(i)
		s.osp[i] = int32(i)
	}
	sort.Slice(s.pos, func(i, j int) bool { return lessPOS(s.triples[s.pos[i]], s.triples[s.pos[j]]) })
	sort.Slice(s.osp, func(i, j int) bool { return lessOSP(s.triples[s.osp[i]], s.triples[s.osp[j]]) })
}

func lessSPO(a, b IDTriple) bool {
	if a.S != b.S {
		return a.S < b.S
	}
	if a.P != b.P {
		return a.P < b.P
	}
	return a.O < b.O
}

func lessPOS(a, b IDTriple) bool {
	if a.P != b.P {
		return a.P < b.P
	}
	if a.O != b.O {
		return a.O < b.O
	}
	return a.S < b.S
}

func lessOSP(a, b IDTriple) bool {
	if a.O != b.O {
		return a.O < b.O
	}
	if a.S != b.S {
		return a.S < b.S
	}
	return a.P < b.P
}

// keyOf projects t onto the component order of the given index.
func keySPO(t IDTriple) [3]ID { return [3]ID{t.S, t.P, t.O} }
func keyPOS(t IDTriple) [3]ID { return [3]ID{t.P, t.O, t.S} }
func keyOSP(t IDTriple) [3]ID { return [3]ID{t.O, t.S, t.P} }

// Iterator walks the triples matched by a pattern. It is positioned before
// the first result; call Next until it returns false.
type Iterator struct {
	st     *Store
	perm   []int32
	lo, hi int
	cur    IDTriple
}

// Next advances to the next matching triple.
func (it *Iterator) Next() bool {
	if it.lo >= it.hi {
		return false
	}
	it.cur = it.st.triples[it.perm[it.lo]]
	it.lo++
	return true
}

// Triple returns the triple at the current position.
func (it *Iterator) Triple() IDTriple { return it.cur }

// Match returns an iterator over all triples matching the pattern; each
// position is either a concrete ID or Wildcard. The most selective
// available index is chosen:
//
//	S bound           → SPO
//	P bound (S free)  → POS
//	O bound only      → OSP
//	S+O bound, P free → OSP range on (O,S) with no extra filtering needed
func (s *Store) Match(sp, pp, op ID) *Iterator {
	s.ensure()
	perm, keyFn, pfx := s.plan(sp, pp, op)
	lo, hi := s.searchRange(perm, keyFn, pfx)
	return &Iterator{st: s, perm: perm, lo: lo, hi: hi}
}

// plan selects the permutation index, its key projection, and the bound
// key prefix for a pattern.
func (s *Store) plan(sp, pp, op ID) ([]int32, func(IDTriple) [3]ID, []ID) {
	switch {
	case sp != Wildcard && pp != Wildcard && op != Wildcard:
		return s.spo, keySPO, []ID{sp, pp, op}
	case sp != Wildcard && pp != Wildcard:
		return s.spo, keySPO, []ID{sp, pp}
	case sp != Wildcard && op != Wildcard:
		return s.osp, keyOSP, []ID{op, sp}
	case sp != Wildcard:
		return s.spo, keySPO, []ID{sp}
	case pp != Wildcard && op != Wildcard:
		return s.pos, keyPOS, []ID{pp, op}
	case pp != Wildcard:
		return s.pos, keyPOS, []ID{pp}
	case op != Wildcard:
		return s.osp, keyOSP, []ID{op}
	default:
		return s.spo, keySPO, nil
	}
}

// searchRange finds [lo,hi) of entries in perm whose key starts with pfx.
func (s *Store) searchRange(perm []int32, keyFn func(IDTriple) [3]ID, pfx []ID) (int, int) {
	if len(pfx) == 0 {
		return 0, len(perm)
	}
	lo := sort.Search(len(perm), func(i int) bool {
		return cmpPrefix(keyFn(s.triples[perm[i]]), pfx) >= 0
	})
	hi := sort.Search(len(perm), func(i int) bool {
		return cmpPrefix(keyFn(s.triples[perm[i]]), pfx) > 0
	})
	return lo, hi
}

// cmpPrefix compares the first len(pfx) components of key to pfx.
func cmpPrefix(key [3]ID, pfx []ID) int {
	for i, p := range pfx {
		if key[i] != p {
			if key[i] < p {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Count returns the exact number of triples matching the pattern in
// O(log n): every bound-position combination maps to a contiguous range of
// one of the three permutation indexes.
func (s *Store) Count(sp, pp, op ID) int {
	s.ensure()
	perm, keyFn, pfx := s.plan(sp, pp, op)
	lo, hi := s.searchRange(perm, keyFn, pfx)
	return hi - lo
}

// ForEach invokes f for every distinct triple in SPO order.
func (s *Store) ForEach(f func(IDTriple)) {
	s.ensure()
	for _, t := range s.triples {
		f(t)
	}
}

// Triples returns the deduplicated triples in SPO order. The returned
// slice is owned by the store and must not be modified.
func (s *Store) Triples() []IDTriple {
	s.ensure()
	return s.triples
}

// DictionaryView returns a store that shares this store's interned
// dictionary (terms and IDs) but holds no triples: Term, Lookup, and
// NumTerms behave identically, Match and Count over it find nothing.
// The sharded coordinator keeps such a view as its global catalog —
// every term resolvable in the single-engine ID space — after the
// off-line build releases the triples themselves to the shards.
//
// The view aliases the parent's dictionary: neither the view nor the
// parent may intern further terms afterwards (treat both as frozen).
func (s *Store) DictionaryView() *Store {
	return &Store{terms: s.terms, byTerm: s.byTerm}
}
