package store

import (
	"fmt"

	"repro/internal/snapfmt"
)

// WriteSections serializes the store — dictionary (records, string
// arena, interning hash table) and the three SoA orderings with their
// offset tables — under the given section group. The payloads are the
// in-memory layouts verbatim, so the matching ReadSections is mmap +
// slice fixup with zero parse cost.
func (s *Store) WriteSections(w *snapfmt.Writer, group uint32) error {
	s.ensure()
	n := s.NumTerms()

	recs := make([]termRec, n)
	arenaLen := 0
	for id := 1; id <= n; id++ {
		t := s.Term(ID(id))
		arenaLen += len(t.Value) + len(t.Datatype) + len(t.Lang)
	}
	arena := make([]byte, 0, arenaLen)
	for id := 1; id <= n; id++ {
		t := s.Term(ID(id))
		recs[id-1] = termRec{
			Off:  uint64(len(arena)),
			VLen: uint32(len(t.Value)),
			DLen: uint32(len(t.Datatype)),
			LLen: uint32(len(t.Lang)),
			Kind: uint32(t.Kind),
		}
		arena = append(arena, t.Value...)
		arena = append(arena, t.Datatype...)
		arena = append(arena, t.Lang...)
	}
	hash := buildHashTable(s.Term, n)

	meta := []storeMetaRec{{
		NumTerms:   uint64(n),
		NumTriples: uint64(s.Len()),
		ArenaLen:   uint64(len(arena)),
		HashLen:    uint64(len(hash)),
	}}
	if err := w.Add(snapfmt.SecStoreMeta, group, snapfmt.AsBytes(meta)); err != nil {
		return err
	}
	if err := w.Add(snapfmt.SecDictRecs, group, snapfmt.AsBytes(recs)); err != nil {
		return err
	}
	if err := w.Add(snapfmt.SecDictArena, group, arena); err != nil {
		return err
	}
	if err := w.Add(snapfmt.SecDictHash, group, snapfmt.AsBytes(hash)); err != nil {
		return err
	}
	if err := w.Add(snapfmt.SecColsSPO, group, snapfmt.AsBytes(s.spo.s), snapfmt.AsBytes(s.spo.p), snapfmt.AsBytes(s.spo.o)); err != nil {
		return err
	}
	if err := w.Add(snapfmt.SecColsPOS, group, snapfmt.AsBytes(s.pos.s), snapfmt.AsBytes(s.pos.p), snapfmt.AsBytes(s.pos.o)); err != nil {
		return err
	}
	if err := w.Add(snapfmt.SecColsOSP, group, snapfmt.AsBytes(s.osp.s), snapfmt.AsBytes(s.osp.p), snapfmt.AsBytes(s.osp.o)); err != nil {
		return err
	}
	subjOff, predOff, objOff := s.subjOff, s.predOff, s.objOff
	if len(subjOff) == 0 {
		// A store that never indexed any triples (e.g. a DictionaryView
		// serving as a cluster catalog) has no offset tables; serialize
		// all-zero ones so the loaded store ranges as empty.
		tl := n + 2
		zero := make([]int32, 3*tl)
		subjOff, predOff, objOff = zero[0:tl:tl], zero[tl:2*tl:2*tl], zero[2*tl:]
	}
	return w.Add(snapfmt.SecStoreOffsets, group,
		snapfmt.AsBytes(subjOff), snapfmt.AsBytes(predOff), snapfmt.AsBytes(objOff))
}

// ReadSections fixes up a snapshot-backed store from the given group's
// sections: every column, offset table, term record, and arena byte is
// a zero-copy view into the reader's mapped region, and the dictionary
// serves Lookup from the serialized hash table. The store is read-only
// (Intern and Add panic) and valid only while the reader stays open.
func ReadSections(r *snapfmt.Reader, group uint32) (*Store, error) {
	meta, err := readRecs[storeMetaRec](r, snapfmt.SecStoreMeta, group)
	if err != nil {
		return nil, err
	}
	if len(meta) != 1 {
		return nil, fmt.Errorf("store: snapshot meta: want 1 record, got %d", len(meta))
	}
	numTerms := int(meta[0].NumTerms)
	numTriples := int(meta[0].NumTriples)

	recs, err := readRecs[termRec](r, snapfmt.SecDictRecs, group)
	if err != nil {
		return nil, err
	}
	arena, err := r.Section(snapfmt.SecDictArena, group)
	if err != nil {
		return nil, err
	}
	hash, err := readRecs[uint32](r, snapfmt.SecDictHash, group)
	if err != nil {
		return nil, err
	}
	if len(recs) != numTerms || len(arena) != int(meta[0].ArenaLen) || len(hash) != int(meta[0].HashLen) {
		return nil, fmt.Errorf("store: snapshot dictionary sections disagree with meta (terms %d/%d, arena %d/%d, hash %d/%d)",
			len(recs), numTerms, len(arena), meta[0].ArenaLen, len(hash), meta[0].HashLen)
	}

	spo, err := readCols(r, snapfmt.SecColsSPO, group, numTriples)
	if err != nil {
		return nil, err
	}
	pos, err := readCols(r, snapfmt.SecColsPOS, group, numTriples)
	if err != nil {
		return nil, err
	}
	osp, err := readCols(r, snapfmt.SecColsOSP, group, numTriples)
	if err != nil {
		return nil, err
	}

	offs, err := readRecs[int32](r, snapfmt.SecStoreOffsets, group)
	if err != nil {
		return nil, err
	}
	tl := numTerms + 2
	if len(offs) != 3*tl {
		return nil, fmt.Errorf("store: snapshot offset tables: want %d entries, got %d", 3*tl, len(offs))
	}

	return &Store{
		dict:    &loadedDict{recs: recs, arena: arena, hash: hash},
		spo:     spo,
		pos:     pos,
		osp:     osp,
		subjOff: offs[0:tl:tl],
		predOff: offs[tl : 2*tl : 2*tl],
		objOff:  offs[2*tl:],
	}, nil
}

func readRecs[T any](r *snapfmt.Reader, kind, group uint32) ([]T, error) {
	b, err := r.Section(kind, group)
	if err != nil {
		return nil, err
	}
	out, err := snapfmt.CastSlice[T](b)
	if err != nil {
		return nil, fmt.Errorf("store: section %q: %w", snapfmt.KindName(kind), err)
	}
	return out, nil
}

func readCols(r *snapfmt.Reader, kind, group uint32, n int) (cols, error) {
	all, err := readRecs[ID](r, kind, group)
	if err != nil {
		return cols{}, err
	}
	if len(all) != 3*n {
		return cols{}, fmt.Errorf("store: section %q: want %d IDs, got %d", snapfmt.KindName(kind), 3*n, len(all))
	}
	return cols{s: all[0:n:n], p: all[n : 2*n : 2*n], o: all[2*n:]}, nil
}
