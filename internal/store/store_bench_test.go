package store

import (
	"testing"

	"repro/internal/datagen"
)

func benchStore(b *testing.B) *Store {
	b.Helper()
	st := New()
	st.AddAll(datagen.DBLPTriples(datagen.DBLPConfig{Publications: 2000, Seed: 1}))
	st.Build()
	return st
}

// BenchmarkMatchBoundSubject measures index probes with a bound subject.
func BenchmarkMatchBoundSubject(b *testing.B) {
	st := benchStore(b)
	var subjects []ID
	st.ForEach(func(t IDTriple) {
		if len(subjects) < 1024 {
			subjects = append(subjects, t.S)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := st.Match(subjects[i%len(subjects)], Wildcard, Wildcard)
		for it.Next() {
		}
	}
}

// BenchmarkMatchBoundPredicate measures POS range scans.
func BenchmarkMatchBoundPredicate(b *testing.B) {
	st := benchStore(b)
	var preds []ID
	st.ForEach(func(t IDTriple) {
		if len(preds) < 16 {
			preds = append(preds, t.P)
		}
	})
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		it := st.Match(Wildcard, preds[i%len(preds)], Wildcard)
		for it.Next() {
			n++
		}
	}
	_ = n
}

// BenchmarkCount measures the O(log n) exact count.
func BenchmarkCount(b *testing.B) {
	st := benchStore(b)
	var preds []ID
	st.ForEach(func(t IDTriple) {
		if len(preds) < 16 {
			preds = append(preds, t.P)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Count(Wildcard, preds[i%len(preds)], Wildcard)
	}
}

// BenchmarkBuild measures index construction (sort + dedup + permutations).
func BenchmarkBuild(b *testing.B) {
	triples := datagen.DBLPTriples(datagen.DBLPConfig{Publications: 2000, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := New()
		st.AddAll(triples)
		st.Build()
	}
}

// BenchmarkSnapshotRoundTrip measures serialize + deserialize.
func BenchmarkSnapshotRoundTrip(b *testing.B) {
	st := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf writeCounter
		if _, err := st.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

type writeCounter struct{ n int }

func (w *writeCounter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }
