package store

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/rdf"
	"repro/internal/snapfmt"
)

// sectionsTestStore builds a store with every term kind, duplicate
// triples, and enough variety to exercise the ordering round trips.
func sectionsTestStore() *Store {
	s := New()
	objs := []rdf.Term{
		rdf.NewLiteral("plain value"),
		rdf.NewTypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer"),
		rdf.NewLangLiteral("hallo", "de"),
		rdf.NewBlank("b0"),
		rdf.NewIRI("http://example.org/target"),
		rdf.NewLiteral(""), // empty lexical form
	}
	preds := []rdf.Term{
		rdf.NewIRI("http://example.org/name"),
		rdf.NewIRI("http://example.org/knows"),
		rdf.NewIRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
	}
	for i := 0; i < 40; i++ {
		subj := rdf.NewIRI(fmt.Sprintf("http://example.org/s%d", i%17))
		t := rdf.Triple{S: subj, P: preds[i%len(preds)], O: objs[i%len(objs)]}
		s.Add(t)
		if i%5 == 0 {
			s.Add(t) // duplicate, deduplicated at Build
		}
	}
	s.Build()
	return s
}

// writeStoreContainer persists src under group into a fresh container.
func writeStoreContainer(t *testing.T, src *Store, group uint32) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "store.swdb")
	w, err := snapfmt.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.WriteSections(w, group); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestStoreSectionsRoundTrip(t *testing.T) {
	src := sectionsTestStore()
	path := writeStoreContainer(t, src, 3)

	for _, mode := range []snapfmt.Mode{snapfmt.ModeMmap, snapfmt.ModeHeap} {
		r, err := snapfmt.Open(path, snapfmt.Options{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		ld, err := ReadSections(r, 3)
		if err != nil {
			t.Fatal(err)
		}

		if ld.NumTerms() != src.NumTerms() {
			t.Fatalf("NumTerms = %d, want %d", ld.NumTerms(), src.NumTerms())
		}
		if ld.Len() != src.Len() {
			t.Fatalf("Len = %d, want %d", ld.Len(), src.Len())
		}
		// Dictionary: every ID decodes to the same term, every term
		// resolves to the same ID through the serialized hash table.
		for id := 1; id <= src.NumTerms(); id++ {
			want := src.Term(ID(id))
			if got := ld.Term(ID(id)); got != want {
				t.Fatalf("Term(%d) = %v, want %v", id, got, want)
			}
			gotID, ok := ld.Lookup(want)
			if !ok || gotID != ID(id) {
				t.Fatalf("Lookup(%v) = %d,%v, want %d", want, gotID, ok, id)
			}
		}
		if _, ok := ld.Lookup(rdf.NewIRI("http://example.org/never-interned")); ok {
			t.Error("Lookup hit on a term that was never interned")
		}
		// Lookup must distinguish terms whose concatenated strings match
		// but whose field boundaries differ.
		if _, ok := ld.Lookup(rdf.NewTypedLiteral("plain value", "x")); ok {
			t.Error("Lookup conflated terms with different field boundaries")
		}

		// Triples: identical set in identical SPO order.
		want := src.Triples()
		i := 0
		ld.ForEach(func(tr IDTriple) {
			if tr != want[i] {
				t.Fatalf("ForEach[%d] = %v, want %v", i, tr, want[i])
			}
			i++
		})
		if i != len(want) {
			t.Fatalf("ForEach visited %d triples, want %d", i, len(want))
		}

		// Every pattern shape agrees with the live store.
		for id := 1; id <= src.NumTerms(); id++ {
			patterns := [][3]ID{
				{ID(id), Wildcard, Wildcard},
				{Wildcard, ID(id), Wildcard},
				{Wildcard, Wildcard, ID(id)},
			}
			for _, p := range patterns {
				a, b := src.Range(p[0], p[1], p[2]), ld.Range(p[0], p[1], p[2])
				if a.Len() != b.Len() {
					t.Fatalf("Range%v: %d vs %d rows", p, a.Len(), b.Len())
				}
				for j := 0; j < a.Len(); j++ {
					if a.Triple(j) != b.Triple(j) {
						t.Fatalf("Range%v row %d: %v vs %v", p, j, a.Triple(j), b.Triple(j))
					}
				}
			}
		}
		for _, tr := range want {
			if ld.Count(tr.S, tr.P, tr.O) != 1 {
				t.Fatalf("fully bound Count(%v) != 1", tr)
			}
		}

		// The loaded store is read-only.
		assertPanics(t, "Intern", func() { ld.Intern(rdf.NewIRI("http://example.org/new")) })
		assertPanics(t, "AddID", func() { ld.AddID(IDTriple{S: 1, P: 2, O: 3}) })

		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDictionaryViewSectionsRoundTrip covers the catalog case: a store
// that shares a dictionary but holds no triples (and so never built
// offset tables) must round-trip as an empty-ranging store.
func TestDictionaryViewSectionsRoundTrip(t *testing.T) {
	src := sectionsTestStore()
	view := src.DictionaryView()
	path := writeStoreContainer(t, view, 0)

	r, err := snapfmt.Open(path, snapfmt.Options{Mode: snapfmt.ModeHeap})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ld, err := ReadSections(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ld.NumTerms() != src.NumTerms() {
		t.Fatalf("NumTerms = %d, want %d", ld.NumTerms(), src.NumTerms())
	}
	if ld.Len() != 0 {
		t.Fatalf("Len = %d, want 0", ld.Len())
	}
	for id := 1; id <= src.NumTerms(); id++ {
		term := src.Term(ID(id))
		if got := ld.Term(ID(id)); got != term {
			t.Fatalf("Term(%d) = %v, want %v", id, got, term)
		}
		if gotID, ok := ld.Lookup(term); !ok || gotID != ID(id) {
			t.Fatalf("Lookup(%v) = %d,%v", term, gotID, ok)
		}
		if n := ld.Count(ID(id), Wildcard, Wildcard); n != 0 {
			t.Fatalf("Count on dictionary view = %d, want 0", n)
		}
	}
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic on a snapshot-backed store", name)
		}
	}()
	f()
}
