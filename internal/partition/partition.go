// Package partition provides the graph partitioners behind the BLINKS
// baseline of the paper's Fig. 5 comparison ("300 BFS", "1000 METIS",
// ...): a seeded BFS block-grower and a METIS-style multilevel partitioner
// (heavy-edge-matching coarsening, greedy initial partitioning, and
// boundary refinement).
//
// Substitution note (see DESIGN.md): the METIS binary is not available;
// the multilevel partitioner here produces the same artifact class —
// balanced blocks with a minimized edge cut — which is all the BLINKS
// block index depends on.
package partition

import (
	"container/heap"
	"sort"
)

// Graph is an undirected multigraph on vertices 0..N-1 with weighted
// edges, the input to the partitioners.
type Graph struct {
	n   int
	adj [][]Edge
}

// Edge is one adjacency entry.
type Edge struct {
	To int32
	W  int32
}

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph {
	return &Graph{n: n, adj: make([][]Edge, n)}
}

// N returns the vertex count.
func (g *Graph) N() int { return g.n }

// AddEdge inserts an undirected edge of weight w. Self-loops are ignored
// (they never affect a cut).
func (g *Graph) AddEdge(u, v int, w int32) {
	if u == v {
		return
	}
	g.adj[u] = append(g.adj[u], Edge{To: int32(v), W: w})
	g.adj[v] = append(g.adj[v], Edge{To: int32(u), W: w})
}

// Adj returns the adjacency of u (owned by the graph).
func (g *Graph) Adj(u int) []Edge { return g.adj[u] }

// Degree returns the number of incident edge entries of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Assignment maps each vertex to its block in [0, k).
type Assignment []int32

// EdgeCut returns the total weight of edges whose endpoints lie in
// different blocks.
func EdgeCut(g *Graph, parts Assignment) int64 {
	var cut int64
	for u := 0; u < g.n; u++ {
		for _, e := range g.adj[u] {
			if int32(u) < e.To && parts[u] != parts[e.To] {
				cut += int64(e.W)
			}
		}
	}
	return cut
}

// Imbalance returns max block size divided by the ideal size n/k (1.0 is
// perfectly balanced).
func Imbalance(parts Assignment, k int) float64 {
	if k <= 0 || len(parts) == 0 {
		return 0
	}
	sizes := make([]int, k)
	for _, p := range parts {
		sizes[p]++
	}
	max := 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	return float64(max) * float64(k) / float64(len(parts))
}

// BFS partitions by growing blocks breadth-first from arbitrary seeds
// until each reaches the target size n/k — the cheap, locality-agnostic
// scheme of the BLINKS evaluation's "BFS" configurations.
func BFS(g *Graph, k int) Assignment {
	if k < 1 {
		k = 1
	}
	parts := make(Assignment, g.n)
	for i := range parts {
		parts[i] = -1
	}
	target := (g.n + k - 1) / k
	block := int32(0)
	size := 0
	var queue []int32
	assign := func(v int32) {
		parts[v] = block
		size++
		if size >= target && int(block) < k-1 {
			block++
			size = 0
		}
	}
	for seed := 0; seed < g.n; seed++ {
		if parts[seed] != -1 {
			continue
		}
		queue = queue[:0]
		queue = append(queue, int32(seed))
		assign(int32(seed))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, e := range g.adj[u] {
				if parts[e.To] == -1 {
					assign(e.To)
					queue = append(queue, e.To)
				}
			}
		}
	}
	return parts
}

// Metis partitions with the multilevel scheme: coarsen by heavy-edge
// matching to ≈ coarseTarget vertices, partition the coarse graph with
// greedy growth, project back, and refine each level with one pass of
// gain-ordered boundary moves under a balance constraint.
func Metis(g *Graph, k int) Assignment {
	if k < 1 {
		k = 1
	}
	if g.n <= k {
		parts := make(Assignment, g.n)
		for i := range parts {
			parts[i] = int32(i % k)
		}
		return parts
	}
	coarseTarget := 8 * k
	if coarseTarget < 64 {
		coarseTarget = 64
	}

	// Coarsening phase.
	type level struct {
		g    *Graph
		map_ []int32 // vertex of this level → vertex of coarser level
	}
	var levels []level
	cur := g
	for cur.n > coarseTarget {
		coarse, mapping := coarsen(cur)
		if coarse.n >= cur.n { // matching made no progress
			break
		}
		levels = append(levels, level{g: cur, map_: mapping})
		cur = coarse
	}

	// Initial partitioning on the coarsest graph.
	parts := greedyGrow(cur, k)
	refine(cur, parts, k)

	// Uncoarsening with refinement.
	for i := len(levels) - 1; i >= 0; i-- {
		lv := levels[i]
		fine := make(Assignment, lv.g.n)
		for v := 0; v < lv.g.n; v++ {
			fine[v] = parts[lv.map_[v]]
		}
		parts = fine
		refine(lv.g, parts, k)
	}
	return parts
}

// coarsen contracts a heavy-edge matching: every vertex is matched with
// its heaviest unmatched neighbor, and matched pairs merge into one coarse
// vertex. Edge weights between coarse vertices accumulate.
func coarsen(g *Graph) (*Graph, []int32) {
	match := make([]int32, g.n)
	for i := range match {
		match[i] = -1
	}
	// Visit vertices in ascending degree order — a common heuristic that
	// matches low-degree fringe vertices before hubs swallow everything.
	order := make([]int32, g.n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool { return len(g.adj[order[a]]) < len(g.adj[order[b]]) })

	for _, u := range order {
		if match[u] != -1 {
			continue
		}
		var best int32 = -1
		var bestW int32 = -1
		for _, e := range g.adj[u] {
			if match[e.To] == -1 && e.To != u && e.W > bestW {
				best, bestW = e.To, e.W
			}
		}
		if best == -1 {
			match[u] = u // matched with itself
		} else {
			match[u] = best
			match[best] = u
		}
	}
	// Number coarse vertices.
	mapping := make([]int32, g.n)
	for i := range mapping {
		mapping[i] = -1
	}
	next := int32(0)
	for u := 0; u < g.n; u++ {
		if mapping[u] != -1 {
			continue
		}
		mapping[u] = next
		if m := match[u]; m != int32(u) && m >= 0 {
			mapping[m] = next
		}
		next++
	}
	coarse := NewGraph(int(next))
	// Accumulate parallel edges.
	acc := map[int64]int32{}
	for u := 0; u < g.n; u++ {
		cu := mapping[u]
		for _, e := range g.adj[u] {
			if int32(u) >= e.To {
				continue
			}
			cv := mapping[e.To]
			if cu == cv {
				continue
			}
			a, b := cu, cv
			if a > b {
				a, b = b, a
			}
			acc[int64(a)<<32|int64(b)] += e.W
		}
	}
	for key, w := range acc {
		coarse.AddEdge(int(key>>32), int(int32(key)), w)
	}
	return coarse, mapping
}

// greedyGrow produces an initial k-way partition by repeatedly growing a
// block from the highest-degree unassigned seed, preferring frontier
// vertices with the strongest connection to the growing block.
func greedyGrow(g *Graph, k int) Assignment {
	parts := make(Assignment, g.n)
	for i := range parts {
		parts[i] = -1
	}
	target := (g.n + k - 1) / k
	seeds := make([]int32, g.n)
	for i := range seeds {
		seeds[i] = int32(i)
	}
	sort.Slice(seeds, func(a, b int) bool { return len(g.adj[seeds[a]]) > len(g.adj[seeds[b]]) })

	block := int32(0)
	for _, seed := range seeds {
		if parts[seed] != -1 {
			continue
		}
		if int(block) >= k {
			block = int32(k - 1)
		}
		// Grow this block with a max-gain frontier heap.
		h := &gainHeap{}
		heap.Push(h, gainItem{v: seed, gain: 0})
		size := 0
		for h.Len() > 0 && size < target {
			it := heap.Pop(h).(gainItem)
			if parts[it.v] != -1 {
				continue
			}
			parts[it.v] = block
			size++
			for _, e := range g.adj[it.v] {
				if parts[e.To] == -1 {
					heap.Push(h, gainItem{v: e.To, gain: e.W})
				}
			}
		}
		if int(block) < k-1 {
			block++
		}
	}
	return parts
}

// refine performs one pass of gain-ordered boundary moves: a vertex moves
// to the neighboring block it is most connected to when that strictly
// reduces the cut and keeps both blocks within the balance bound.
func refine(g *Graph, parts Assignment, k int) {
	sizes := make([]int, k)
	for _, p := range parts {
		sizes[p]++
	}
	maxSize := (g.n+k-1)/k + g.n/(10*k) + 1 // ≤ ~10% over the ideal

	for u := 0; u < g.n; u++ {
		home := parts[u]
		// Connection weight per neighboring block.
		conn := map[int32]int64{}
		for _, e := range g.adj[u] {
			conn[parts[e.To]] += int64(e.W)
		}
		bestBlock, bestGain := home, int64(0)
		for b, w := range conn {
			if b == home {
				continue
			}
			gain := w - conn[home]
			if gain > bestGain && sizes[b] < maxSize && sizes[home] > 1 {
				bestBlock, bestGain = b, gain
			}
		}
		if bestBlock != home {
			sizes[home]--
			sizes[bestBlock]++
			parts[u] = bestBlock
		}
	}
}

type gainItem struct {
	v    int32
	gain int32
}

type gainHeap []gainItem

func (h gainHeap) Len() int            { return len(h) }
func (h gainHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h gainHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x interface{}) { *h = append(*h, x.(gainItem)) }
func (h *gainHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
