package partition

import (
	"math/rand"
	"testing"
)

// gridGraph builds an r×c grid — a graph with obvious good partitions.
func gridGraph(r, c int) *Graph {
	g := NewGraph(r * c)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.AddEdge(id(i, j), id(i, j+1), 1)
			}
			if i+1 < r {
				g.AddEdge(id(i, j), id(i+1, j), 1)
			}
		}
	}
	return g
}

// clusterGraph builds k dense clusters joined by single bridge edges.
func clusterGraph(k, size int, rng *rand.Rand) *Graph {
	g := NewGraph(k * size)
	for c := 0; c < k; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if rng.Intn(3) == 0 {
					g.AddEdge(base+i, base+j, 1)
				}
			}
		}
		// chain to keep each cluster connected
		for i := 1; i < size; i++ {
			g.AddEdge(base+i-1, base+i, 1)
		}
	}
	for c := 1; c < k; c++ {
		g.AddEdge((c-1)*size, c*size, 1)
	}
	return g
}

func assertValid(t *testing.T, g *Graph, parts Assignment, k int) {
	t.Helper()
	if len(parts) != g.N() {
		t.Fatalf("assignment length %d, want %d", len(parts), g.N())
	}
	for v, p := range parts {
		if p < 0 || int(p) >= k {
			t.Fatalf("vertex %d assigned to invalid block %d", v, p)
		}
	}
}

func TestBFSCoversAllVertices(t *testing.T) {
	g := gridGraph(10, 10)
	for _, k := range []int{1, 2, 4, 10} {
		parts := BFS(g, k)
		assertValid(t, g, parts, k)
		if im := Imbalance(parts, k); im > 2.0 {
			t.Errorf("k=%d: BFS imbalance %.2f too high", k, im)
		}
	}
}

func TestBFSDisconnectedGraph(t *testing.T) {
	g := NewGraph(10) // no edges at all
	parts := BFS(g, 3)
	assertValid(t, g, parts, 3)
}

func TestMetisValidAndBalanced(t *testing.T) {
	g := gridGraph(16, 16)
	for _, k := range []int{2, 4, 8} {
		parts := Metis(g, k)
		assertValid(t, g, parts, k)
		if im := Imbalance(parts, k); im > 1.7 {
			t.Errorf("k=%d: Metis imbalance %.2f too high", k, im)
		}
	}
}

func TestMetisFindsClusterStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const k, size = 4, 30
	g := clusterGraph(k, size, rng)
	parts := Metis(g, k)
	assertValid(t, g, parts, k)
	cut := EdgeCut(g, parts)
	// The natural partition cuts exactly k-1 bridge edges; allow slack but
	// require far better than random. A random assignment cuts ~3/4 of
	// all edges.
	var total int64
	for u := 0; u < g.N(); u++ {
		total += int64(len(g.Adj(u)))
	}
	total /= 2
	if cut > total/4 {
		t.Errorf("Metis cut %d of %d edges; expected strong cluster recovery", cut, total)
	}
}

func TestMetisBeatsBFSOnClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := clusterGraph(5, 40, rng)
	bfsCut := EdgeCut(g, BFS(g, 5))
	metisCut := EdgeCut(g, Metis(g, 5))
	// The multilevel partitioner should not be (much) worse than naive
	// BFS growth on cluster-structured graphs.
	if metisCut > bfsCut*2 {
		t.Errorf("Metis cut %d much worse than BFS cut %d", metisCut, bfsCut)
	}
}

func TestEdgeCutAndImbalance(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(2, 3, 1)
	g.AddEdge(1, 2, 5)
	parts := Assignment{0, 0, 1, 1}
	if cut := EdgeCut(g, parts); cut != 5 {
		t.Fatalf("EdgeCut = %d, want 5", cut)
	}
	if im := Imbalance(parts, 2); im != 1.0 {
		t.Fatalf("Imbalance = %v, want 1.0", im)
	}
	if im := Imbalance(Assignment{0, 0, 0, 1}, 2); im != 1.5 {
		t.Fatalf("Imbalance = %v, want 1.5", im)
	}
}

func TestSelfLoopsIgnored(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 0, 10)
	g.AddEdge(0, 1, 1)
	if g.Degree(0) != 1 {
		t.Fatalf("self-loop should be dropped, degree = %d", g.Degree(0))
	}
}

func TestTinyGraphs(t *testing.T) {
	// n <= k: everyone gets a block; no panic.
	g := NewGraph(3)
	g.AddEdge(0, 1, 1)
	parts := Metis(g, 5)
	assertValid(t, g, parts, 5)
	parts = BFS(g, 5)
	assertValid(t, g, parts, 5)
	// Empty graph.
	empty := NewGraph(0)
	if got := Metis(empty, 4); len(got) != 0 {
		t.Fatal("empty graph should give empty assignment")
	}
}

func TestMetisRandomGraphsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for round := 0; round < 10; round++ {
		n := 20 + rng.Intn(200)
		g := NewGraph(n)
		for i := 0; i < n*3; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), int32(1+rng.Intn(4)))
		}
		k := 2 + rng.Intn(6)
		parts := Metis(g, k)
		assertValid(t, g, parts, k)
		bfs := BFS(g, k)
		assertValid(t, g, bfs, k)
	}
}
