// Package metrics has two halves. This file implements the effectiveness
// measures of Sec. VII-A: reciprocal rank (RR = 1/r of the first correct
// result, 0 if absent) and mean reciprocal rank over a query workload.
// registry.go adds the operational side — atomic counters, gauges, and
// summaries in a Registry that renders the Prometheus text exposition
// format for the serving subsystem's /metrics endpoint.
package metrics

// ReciprocalRank returns 1/(index+1) for the first position where correct
// reports true, and 0 when no result is correct.
func ReciprocalRank(n int, correct func(i int) bool) float64 {
	for i := 0; i < n; i++ {
		if correct(i) {
			return 1 / float64(i+1)
		}
	}
	return 0
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
