package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the serving-side half of the package: lock-free counters,
// gauges, and summaries collected into a Registry that renders itself in
// the Prometheus text exposition format (version 0.0.4). It is
// deliberately dependency-free — the server must not pull a metrics
// client library into a reproduction repository — and implements just the
// subset the /metrics endpoint needs: counter, gauge, and summary
// (count + sum, no quantiles), plus a single optional label dimension.

// Counter is a monotonically increasing counter, safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative to keep the counter monotone).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down, safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is a gauge holding a float64 (e.g. seconds), safe for
// concurrent use. The value is stored as float64 bits.
type FloatGauge struct {
	v atomic.Uint64 // math.Float64bits
}

// Set replaces the value.
func (g *FloatGauge) Set(v float64) { g.v.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// Summary accumulates observations as a running count and sum (the
// Prometheus summary type without quantiles), safe for concurrent use.
// The sum is stored as float64 bits updated by compare-and-swap.
type Summary struct {
	count atomic.Uint64
	sum   atomic.Uint64 // math.Float64bits
}

// Observe records one observation.
func (s *Summary) Observe(v float64) {
	s.count.Add(1)
	for {
		old := s.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if s.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (s *Summary) Count() uint64 { return s.count.Load() }

// Sum returns the sum of all observations.
func (s *Summary) Sum() float64 { return math.Float64frombits(s.sum.Load()) }

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindSummary
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "summary"
	}
}

// family is one registered metric name: either a single unlabeled series
// or a set of series distinguished by one label.
type family struct {
	name  string
	help  string
	kind  metricKind
	label string // label dimension name; empty for unlabeled families
	// bounds are the shared bucket boundaries of a histogram family
	// (nil for other kinds).
	bounds []float64

	mu     sync.Mutex
	series map[string]any // label value ("" for unlabeled) → *Counter etc.
	order  []string       // label values in first-use order
}

func (f *family) get(labelValue string, make func() any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[labelValue]; ok {
		return m
	}
	m := make()
	f.series[labelValue] = m
	f.order = append(f.order, labelValue)
	return m
}

// Registry is a set of metric families rendered by WritePrometheus.
// Registration methods panic on a duplicate or malformed name, which is
// always a programming error caught at startup.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) register(name, help string, kind metricKind, label string) *family {
	if name == "" {
		panic("metrics: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric %q", name))
	}
	f := &family{name: name, help: help, kind: kind, label: label,
		series: make(map[string]any)}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, "")
	return f.get("", func() any { return new(Counter) }).(*Counter)
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, "")
	return f.get("", func() any { return new(Gauge) }).(*Gauge)
}

// FloatGauge registers and returns an unlabeled float-valued gauge.
func (r *Registry) FloatGauge(name, help string) *FloatGauge {
	f := r.register(name, help, kindGauge, "")
	return f.get("", func() any { return new(FloatGauge) }).(*FloatGauge)
}

// Summary registers and returns an unlabeled summary.
func (r *Registry) Summary(name, help string) *Summary {
	f := r.register(name, help, kindSummary, "")
	return f.get("", func() any { return new(Summary) }).(*Summary)
}

// CounterVec is a counter family with one label dimension.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if label == "" {
		panic("metrics: CounterVec needs a label name")
	}
	return &CounterVec{f: r.register(name, help, kindCounter, label)}
}

// With returns the counter for one label value, creating it on first use.
func (v *CounterVec) With(labelValue string) *Counter {
	return v.f.get(labelValue, func() any { return new(Counter) }).(*Counter)
}

// GaugeVec is a gauge family with one label dimension.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	if label == "" {
		panic("metrics: GaugeVec needs a label name")
	}
	return &GaugeVec{f: r.register(name, help, kindGauge, label)}
}

// With returns the gauge for one label value, creating it on first use.
func (v *GaugeVec) With(labelValue string) *Gauge {
	return v.f.get(labelValue, func() any { return new(Gauge) }).(*Gauge)
}

// SummaryVec is a summary family with one label dimension.
type SummaryVec struct{ f *family }

// SummaryVec registers a labeled summary family.
func (r *Registry) SummaryVec(name, help, label string) *SummaryVec {
	if label == "" {
		panic("metrics: SummaryVec needs a label name")
	}
	return &SummaryVec{f: r.register(name, help, kindSummary, label)}
}

// With returns the summary for one label value, creating it on first use.
func (v *SummaryVec) With(labelValue string) *Summary {
	return v.f.get(labelValue, func() any { return new(Summary) }).(*Summary)
}

// WritePrometheus renders every registered family in the Prometheus text
// exposition format, families in registration order, series in first-use
// order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	families := make([]*family, len(r.families))
	copy(families, r.families)
	r.mu.Unlock()

	for _, f := range families {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		f.mu.Lock()
		order := make([]string, len(f.order))
		copy(order, f.order)
		series := make(map[string]any, len(f.series))
		for k, v := range f.series {
			series[k] = v
		}
		f.mu.Unlock()
		for _, lv := range order {
			suffix := ""
			if f.label != "" {
				suffix = fmt.Sprintf("{%s=%q}", f.label, lv)
			}
			var err error
			switch m := series[lv].(type) {
			case *Counter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, suffix, m.Value())
			case *Gauge:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, suffix, m.Value())
			case *FloatGauge:
				_, err = fmt.Fprintf(w, "%s%s %g\n", f.name, suffix, m.Value())
			case *Summary:
				_, err = fmt.Fprintf(w, "%s_count%s %d\n", f.name, suffix, m.Count())
				if err == nil {
					_, err = fmt.Fprintf(w, "%s_sum%s %g\n", f.name, suffix, m.Sum())
				}
			case *Histogram:
				err = writeHistogram(w, f, lv, m)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// Snapshot flattens the registry into a name (plus {label="value"} for
// labeled series, _count/_sum for summaries) → value map, sorted access
// left to the caller; handy for JSON status endpoints and tests.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	r.mu.Lock()
	families := make([]*family, len(r.families))
	copy(families, r.families)
	r.mu.Unlock()
	for _, f := range families {
		f.mu.Lock()
		for lv, m := range f.series {
			suffix := ""
			if f.label != "" {
				suffix = fmt.Sprintf("{%s=%q}", f.label, lv)
			}
			switch m := m.(type) {
			case *Counter:
				out[f.name+suffix] = float64(m.Value())
			case *Gauge:
				out[f.name+suffix] = float64(m.Value())
			case *FloatGauge:
				out[f.name+suffix] = m.Value()
			case *Summary:
				out[f.name+"_count"+suffix] = float64(m.Count())
				out[f.name+"_sum"+suffix] = m.Sum()
			case *Histogram:
				out[f.name+"_count"+suffix] = float64(m.Count())
				out[f.name+"_sum"+suffix] = m.Sum()
			}
		}
		f.mu.Unlock()
	}
	return out
}

// SortedKeys returns the snapshot keys in lexicographic order, for
// deterministic rendering in tests and tools.
func SortedKeys(snap map[string]float64) []string {
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
