package metrics

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync/atomic"
)

// Histogram is a lock-free, log-bucketed latency histogram: fixed bucket
// boundaries chosen at registration, one atomic counter per bucket, and
// a count/sum pair — the Prometheus histogram type. Unlike the Summary
// (count + sum only), it supports tail quantiles (p50/p95/p99) at read
// time, which is what the latency SLO work needs; the trade is a small,
// bounded quantile error (at most one bucket width, ~2× at the default
// log-2 spacing) that never degrades under load the way sampled
// quantiles do.
//
// Observe is wait-free: one binary search over the fixed bounds plus two
// atomic adds and a CAS loop on the float sum. No locks anywhere, so
// concurrent request goroutines never contend.
type Histogram struct {
	bounds []float64 // ascending upper bounds; immutable after creation
	counts []padUint64
	count  atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits
}

// padUint64 spaces the per-bucket counters a cache line apart so two
// cores observing adjacent buckets don't false-share.
type padUint64 struct {
	v atomic.Uint64
	_ [56]byte
}

// DefLatencyBuckets is the default bucket ladder for request and stage
// latencies in seconds: log-2 spaced from 10µs to ~84s. The floor sits
// below the fastest warm stage (a 2-keyword explore runs ~50µs) and the
// ceiling above any configurable request deadline, so both ends of the
// distribution land in real buckets rather than the overflow.
var DefLatencyBuckets = func() []float64 {
	b := make([]float64, 24)
	v := 1e-5
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]padUint64, len(bounds)+1), // +1: the +Inf overflow bucket
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound ≥ v (Prometheus buckets are
	// cumulative with `le` semantics).
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].v.Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the bucket upper bounds (shared; do not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns a snapshot of the per-bucket (non-cumulative)
// counts; the last entry is the +Inf overflow bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].v.Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the bucket holding the target rank — the standard Prometheus
// histogram_quantile estimate. Returns 0 with no observations.
// Observations in the overflow bucket clamp to the highest bound.
func (h *Histogram) Quantile(q float64) float64 {
	return quantileOf(q, h.bounds, h.BucketCounts())
}

// quantileOf is the interpolation shared with external histograms (the
// runtime/metrics GC-pause histogram reuses it).
func quantileOf(q float64, bounds []float64, counts []uint64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(bounds) {
			// Overflow bucket: no upper bound to interpolate toward.
			return bounds[len(bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = bounds[i-1]
		}
		upper := bounds[i]
		frac := (rank - prev) / float64(c)
		if frac < 0 {
			frac = 0
		}
		return lower + (upper-lower)*frac
	}
	return bounds[len(bounds)-1]
}

// formatLE renders a bucket bound the way Prometheus expects in the `le`
// label: shortest representation that round-trips.
func formatLE(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// writeHistogram renders one histogram series in the Prometheus text
// format: cumulative `_bucket` lines with `le` labels (the family label,
// when present, precedes `le`), then `_sum` and `_count`.
func writeHistogram(w io.Writer, f *family, labelValue string, h *Histogram) error {
	prefix := ""
	if f.label != "" {
		prefix = fmt.Sprintf("%s=%q,", f.label, labelValue)
	}
	counts := h.BucketCounts()
	var cum uint64
	for i, b := range h.bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", f.name, prefix, formatLE(b), cum); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1]
	if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", f.name, prefix, cum); err != nil {
		return err
	}
	suffix := ""
	if f.label != "" {
		suffix = fmt.Sprintf("{%s=%q}", f.label, labelValue)
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", f.name, suffix, h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, suffix, cum)
	return err
}

// Histogram registers and returns an unlabeled histogram. bounds nil
// applies DefLatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.register(name, help, kindHistogram, "")
	f.bounds = normalizedBounds(bounds)
	return f.get("", func() any { return newHistogram(f.bounds) }).(*Histogram)
}

// HistogramVec is a histogram family with one label dimension; every
// series shares the family's bucket boundaries.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family. bounds nil applies
// DefLatencyBuckets.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	if label == "" {
		panic("metrics: HistogramVec needs a label name")
	}
	f := r.register(name, help, kindHistogram, label)
	f.bounds = normalizedBounds(bounds)
	return &HistogramVec{f: f}
}

func normalizedBounds(bounds []float64) []float64 {
	if len(bounds) == 0 {
		return DefLatencyBuckets
	}
	return bounds
}

// With returns the histogram for one label value, creating it on first
// use.
func (v *HistogramVec) With(labelValue string) *Histogram {
	return v.f.get(labelValue, func() any { return newHistogram(v.f.bounds) }).(*Histogram)
}

// Each calls fn for every existing series in first-use order — how the
// stats endpoint walks the per-stage histograms without knowing the
// stage names up front.
func (v *HistogramVec) Each(fn func(labelValue string, h *Histogram)) {
	v.f.mu.Lock()
	order := make([]string, len(v.f.order))
	copy(order, v.f.order)
	series := make(map[string]any, len(v.f.series))
	for k, m := range v.f.series {
		series[k] = m
	}
	v.f.mu.Unlock()
	for _, lv := range order {
		fn(lv, series[lv].(*Histogram))
	}
}
