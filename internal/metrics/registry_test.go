package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests.")
	g := r.Gauge("test_inflight", "In flight.")
	sm := r.Summary("test_latency_seconds", "Latency.")
	vec := r.CounterVec("test_by_endpoint_total", "Per endpoint.", "endpoint")

	c.Add(3)
	g.Set(7)
	g.Dec()
	sm.Observe(0.5)
	sm.Observe(1.5)
	vec.With("search").Inc()
	vec.With("execute").Add(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_requests_total Requests.",
		"# TYPE test_requests_total counter",
		"test_requests_total 3",
		"# TYPE test_inflight gauge",
		"test_inflight 6",
		"# TYPE test_latency_seconds summary",
		"test_latency_seconds_count 2",
		"test_latency_seconds_sum 2",
		`test_by_endpoint_total{endpoint="search"} 1`,
		`test_by_endpoint_total{endpoint="execute"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(5)
	r.SummaryVec("lat", "", "ep").With("x").Observe(2)
	snap := r.Snapshot()
	if snap["a_total"] != 5 {
		t.Errorf("a_total = %v", snap["a_total"])
	}
	if snap[`lat_count{ep="x"}`] != 1 || snap[`lat_sum{ep="x"}`] != 2 {
		t.Errorf("summary snapshot = %v", snap)
	}
	keys := SortedKeys(snap)
	if len(keys) != 3 {
		t.Errorf("keys = %v", keys)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration should panic")
		}
	}()
	r.Gauge("dup", "")
}

func TestCountersConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	s := r.Summary("s", "")
	vec := r.CounterVec("v", "", "l")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				s.Observe(1)
				vec.With("x").Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || s.Count() != 8000 || s.Sum() != 8000 || vec.With("x").Value() != 8000 {
		t.Errorf("c=%d s.count=%d s.sum=%g v=%d, want 8000 each",
			c.Value(), s.Count(), s.Sum(), vec.With("x").Value())
	}
}
