package metrics

import "testing"

func TestReciprocalRank(t *testing.T) {
	ranked := []string{"b", "a", "c"}
	rr := ReciprocalRank(len(ranked), func(i int) bool { return ranked[i] == "a" })
	if rr != 0.5 {
		t.Fatalf("RR = %v, want 0.5", rr)
	}
	if rr := ReciprocalRank(len(ranked), func(i int) bool { return ranked[i] == "b" }); rr != 1 {
		t.Fatalf("RR = %v, want 1", rr)
	}
	if rr := ReciprocalRank(len(ranked), func(i int) bool { return false }); rr != 0 {
		t.Fatalf("RR = %v, want 0 when absent", rr)
	}
	if rr := ReciprocalRank(0, func(i int) bool { return true }); rr != 0 {
		t.Fatalf("RR over empty list = %v, want 0", rr)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 0.5, 0}); m != 0.5 {
		t.Fatalf("Mean = %v, want 0.5", m)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", m)
	}
}
