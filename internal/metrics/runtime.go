package metrics

import (
	"fmt"
	"io"
	rtm "runtime/metrics"
)

// This file bridges the Go runtime's own telemetry (runtime/metrics)
// into the serving layer's exposition, so load tests can correlate
// request-latency tails with GC pauses, heap growth, and goroutine
// pile-ups from the same scrape.

// runtimeSampleNames are the runtime/metrics series the server exposes.
var runtimeSampleNames = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds", // histogram of individual stop-the-world pauses
}

// RuntimeStats is one read of the runtime telemetry the serving layer
// reports: scheduler, heap, and the GC pause distribution reduced to the
// same tail quantiles the request histograms report.
type RuntimeStats struct {
	Goroutines    int64   `json:"goroutines"`
	HeapObjectsB  uint64  `json:"heap_objects_bytes"`
	TotalMemoryB  uint64  `json:"total_memory_bytes"`
	GCCycles      uint64  `json:"gc_cycles_total"`
	GCPauseTotalS float64 `json:"gc_pause_seconds_total"`
	GCPauseCount  uint64  `json:"gc_pause_count"`
	GCPauseP50S   float64 `json:"gc_pause_p50_seconds"`
	GCPauseP95S   float64 `json:"gc_pause_p95_seconds"`
	GCPauseP99S   float64 `json:"gc_pause_p99_seconds"`
}

// ReadRuntime samples the runtime.
func ReadRuntime() RuntimeStats {
	samples := make([]rtm.Sample, len(runtimeSampleNames))
	for i, n := range runtimeSampleNames {
		samples[i].Name = n
	}
	rtm.Read(samples)
	var out RuntimeStats
	for _, s := range samples {
		switch s.Name {
		case "/sched/goroutines:goroutines":
			if s.Value.Kind() == rtm.KindUint64 {
				out.Goroutines = int64(s.Value.Uint64())
			}
		case "/memory/classes/heap/objects:bytes":
			if s.Value.Kind() == rtm.KindUint64 {
				out.HeapObjectsB = s.Value.Uint64()
			}
		case "/memory/classes/total:bytes":
			if s.Value.Kind() == rtm.KindUint64 {
				out.TotalMemoryB = s.Value.Uint64()
			}
		case "/gc/cycles/total:gc-cycles":
			if s.Value.Kind() == rtm.KindUint64 {
				out.GCCycles = s.Value.Uint64()
			}
		case "/gc/pauses:seconds":
			if s.Value.Kind() != rtm.KindFloat64Histogram {
				continue
			}
			h := s.Value.Float64Histogram()
			out.GCPauseCount, out.GCPauseTotalS = histTotals(h)
			counts, bounds := clampRuntimeHist(h)
			out.GCPauseP50S = quantileOf(0.50, bounds, counts)
			out.GCPauseP95S = quantileOf(0.95, bounds, counts)
			out.GCPauseP99S = quantileOf(0.99, bounds, counts)
		}
	}
	return out
}

// histTotals sums a runtime histogram into (count, approximate seconds):
// each bucket contributes its count at the bucket midpoint (clamped for
// the open-ended edges).
func histTotals(h *rtm.Float64Histogram) (uint64, float64) {
	var count uint64
	var sum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		count += c
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		mid := (lo + hi) / 2
		if isInf(lo, -1) {
			mid = hi
		} else if isInf(hi, 1) {
			mid = lo
		}
		sum += float64(c) * mid
	}
	return count, sum
}

// clampRuntimeHist converts a runtime Float64Histogram (N+1 bucket
// edges, possibly ±Inf at the ends) into the (counts, upper-bounds)
// shape quantileOf interpolates over.
func clampRuntimeHist(h *rtm.Float64Histogram) (counts []uint64, bounds []float64) {
	counts = make([]uint64, 0, len(h.Counts))
	bounds = make([]float64, 0, len(h.Counts))
	for i, c := range h.Counts {
		hi := h.Buckets[i+1]
		if isInf(hi, 1) {
			// Fold the open top bucket into the overflow slot quantileOf
			// already models (counts one longer than bounds).
			counts = append(counts, c)
			continue
		}
		bounds = append(bounds, hi)
		counts = append(counts, c)
	}
	if len(bounds) == 0 {
		bounds = append(bounds, 0)
	}
	return counts, bounds
}

func isInf(f float64, sign int) bool {
	return (sign >= 0 && f > 1e300) || (sign <= 0 && f < -1e300)
}

// WriteRuntimePrometheus appends the runtime series to a Prometheus text
// exposition, after the registry's own families: goroutines, heap and
// total memory, GC cycle and pause totals, and the GC pause tail as a
// quantile-labeled summary.
func WriteRuntimePrometheus(w io.Writer) error {
	rs := ReadRuntime()
	_, err := fmt.Fprintf(w,
		"# HELP go_goroutines Goroutines that currently exist.\n"+
			"# TYPE go_goroutines gauge\n"+
			"go_goroutines %d\n"+
			"# HELP go_heap_objects_bytes Bytes of allocated heap objects.\n"+
			"# TYPE go_heap_objects_bytes gauge\n"+
			"go_heap_objects_bytes %d\n"+
			"# HELP go_memory_total_bytes Total bytes of memory mapped by the Go runtime.\n"+
			"# TYPE go_memory_total_bytes gauge\n"+
			"go_memory_total_bytes %d\n"+
			"# HELP go_gc_cycles_total Completed GC cycles.\n"+
			"# TYPE go_gc_cycles_total counter\n"+
			"go_gc_cycles_total %d\n"+
			"# HELP go_gc_pause_seconds Stop-the-world GC pause latency.\n"+
			"# TYPE go_gc_pause_seconds summary\n"+
			"go_gc_pause_seconds{quantile=\"0.5\"} %g\n"+
			"go_gc_pause_seconds{quantile=\"0.95\"} %g\n"+
			"go_gc_pause_seconds{quantile=\"0.99\"} %g\n"+
			"go_gc_pause_seconds_sum %g\n"+
			"go_gc_pause_seconds_count %d\n",
		rs.Goroutines, rs.HeapObjectsB, rs.TotalMemoryB, rs.GCCycles,
		rs.GCPauseP50S, rs.GCPauseP95S, rs.GCPauseP99S,
		rs.GCPauseTotalS, rs.GCPauseCount)
	return err
}
