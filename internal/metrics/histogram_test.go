package metrics

import (
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketAssignment(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{0.001, 0.01, 0.1, 1})

	// le semantics: a value equal to a bound lands in that bound's bucket.
	for _, v := range []float64{0.0005, 0.001} {
		h.Observe(v)
	}
	h.Observe(0.002) // (0.001, 0.01]
	h.Observe(0.5)   // (0.1, 1]
	h.Observe(3)     // overflow
	h.Observe(0)     // below the floor → first bucket

	counts := h.BucketCounts()
	want := []uint64{3, 1, 0, 1, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, counts[i], w, counts)
		}
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if got := h.Sum(); math.Abs(got-3.5035) > 1e-9 {
		t.Errorf("sum = %g, want 3.5035", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2, 4, 8})

	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", q)
	}

	// 100 observations uniform in (1, 2]: every quantile interpolates
	// inside that bucket.
	for i := 0; i < 100; i++ {
		h.Observe(1.5)
	}
	p50 := h.Quantile(0.5)
	if p50 < 1 || p50 > 2 {
		t.Errorf("p50 = %g, want within (1, 2]", p50)
	}
	// Linear interpolation: rank 50 of 100 in bucket (1,2] → 1 + 1·(50/100).
	if math.Abs(p50-1.5) > 1e-9 {
		t.Errorf("p50 = %g, want 1.5", p50)
	}

	// Add 100 in (4, 8]: p99 must land in the upper bucket, p25 in the
	// lower one.
	for i := 0; i < 100; i++ {
		h.Observe(5)
	}
	if p99 := h.Quantile(0.99); p99 <= 4 || p99 > 8 {
		t.Errorf("p99 = %g, want within (4, 8]", p99)
	}
	if p25 := h.Quantile(0.25); p25 <= 0 || p25 > 2 {
		t.Errorf("p25 = %g, want within (0, 2]", p25)
	}

	// Overflow-only histogram clamps to the top bound.
	h2 := r.Histogram("h2", "", []float64{1, 2})
	h2.Observe(100)
	if q := h2.Quantile(0.5); q != 2 {
		t.Errorf("overflow quantile = %g, want clamp to 2", q)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("req_seconds", "Request latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	v := r.HistogramVec("stage_seconds", "Stage latency.", "stage", []float64{0.25})
	v.With("explore").Observe(0.1)
	v.With("explore").Observe(0.9)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE req_seconds histogram",
		`req_seconds_bucket{le="0.1"} 1`,
		`req_seconds_bucket{le="1"} 2`,
		`req_seconds_bucket{le="+Inf"} 3`,
		"req_seconds_sum 5.55",
		"req_seconds_count 3",
		`stage_seconds_bucket{stage="explore",le="0.25"} 1`,
		`stage_seconds_bucket{stage="explore",le="+Inf"} 2`,
		`stage_seconds_count{stage="explore"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	snap := r.Snapshot()
	if snap["req_seconds_count"] != 3 {
		t.Errorf("snapshot count = %v", snap["req_seconds_count"])
	}
	if snap[`stage_seconds_count{stage="explore"}`] != 2 {
		t.Errorf("snapshot labeled count = %v", snap[`stage_seconds_count{stage="explore"}`])
	}
}

func TestHistogramVecEach(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("x", "", "stage", nil)
	v.With("b").Observe(1)
	v.With("a").Observe(1)
	var order []string
	v.Each(func(lv string, h *Histogram) {
		order = append(order, lv)
		if h.Count() != 1 {
			t.Errorf("series %s count = %d", lv, h.Count())
		}
	})
	if len(order) != 2 || order[0] != "b" || order[1] != "a" {
		t.Errorf("Each order = %v, want first-use order [b a]", order)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", nil)
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%100) / 1000)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Errorf("count = %d, want %d", h.Count(), workers*per)
	}
	var total uint64
	for _, c := range h.BucketCounts() {
		total += c
	}
	if total != workers*per {
		t.Errorf("bucket total = %d, want %d", total, workers*per)
	}
}

func TestDefLatencyBuckets(t *testing.T) {
	b := DefLatencyBuckets
	if b[0] != 1e-5 {
		t.Errorf("floor = %g, want 1e-5", b[0])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not increasing at %d: %g ≤ %g", i, b[i], b[i-1])
		}
	}
	if top := b[len(b)-1]; top < 60 {
		t.Errorf("ceiling = %g, want ≥ 60s to cover max deadlines", top)
	}
}

func TestReadRuntime(t *testing.T) {
	// Force at least one GC so the pause histogram is non-degenerate.
	runtime.GC()
	rs := ReadRuntime()
	if rs.Goroutines < 1 {
		t.Errorf("goroutines = %d", rs.Goroutines)
	}
	if rs.HeapObjectsB == 0 || rs.TotalMemoryB == 0 {
		t.Errorf("memory stats zero: %+v", rs)
	}
	if rs.GCCycles == 0 || rs.GCPauseCount == 0 {
		t.Errorf("gc stats zero after runtime.GC(): %+v", rs)
	}
	if rs.GCPauseP99S < rs.GCPauseP50S {
		t.Errorf("p99 %g < p50 %g", rs.GCPauseP99S, rs.GCPauseP50S)
	}

	var b strings.Builder
	if err := WriteRuntimePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"go_goroutines ", "go_gc_pause_seconds{quantile=\"0.99\"}", "go_gc_cycles_total "} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("runtime exposition missing %q:\n%s", want, b.String())
		}
	}
}
