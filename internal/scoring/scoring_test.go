package scoring

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/summary"
)

func buildAug(t *testing.T) (*summary.Augmented, *store.Store) {
	t.Helper()
	st := store.New()
	st.AddAll(rdf.MustParseFig1())
	sg := summary.Build(graph.Build(st))
	pubID, _ := st.Lookup(rdf.NewIRI(rdf.ExampleNS + "Publication"))
	ag := sg.Augment([][]summary.Match{{
		{Kind: summary.MatchClass, Score: 0.5, Class: pubID},
	}})
	return ag, st
}

func classElem(t *testing.T, ag *summary.Augmented, st *store.Store, local string) summary.ElemID {
	t.Helper()
	id, _ := st.Lookup(rdf.NewIRI(rdf.ExampleNS + local))
	el, ok := ag.Base.ClassElem(id)
	if !ok {
		t.Fatalf("no class elem for %s", local)
	}
	return el
}

func TestC1AllOnes(t *testing.T) {
	ag, st := buildAug(t)
	s := New(PathLength, ag)
	for i := 0; i < ag.NumElements(); i++ {
		if c := s.ElementCost(summary.ElemID(i)); c != 1 {
			t.Fatalf("C1 cost of element %d = %v, want 1", i, c)
		}
	}
	_ = st
}

func TestC2PopularCostsLess(t *testing.T) {
	ag, st := buildAug(t)
	s := New(Popularity, ag)
	pub := classElem(t, ag, st, "Publication") // aggregates 2 entities
	thing := ag.Base.Thing()                   // aggregates 0
	if !(s.ElementCost(pub) < s.ElementCost(thing)) {
		t.Fatalf("popular class should cost less: pub=%v thing=%v",
			s.ElementCost(pub), s.ElementCost(thing))
	}
}

func TestCostsStrictlyPositive(t *testing.T) {
	ag, _ := buildAug(t)
	for _, scheme := range []Scheme{PathLength, Popularity, Matching} {
		s := New(scheme, ag)
		for i := 0; i < ag.NumElements(); i++ {
			if c := s.ElementCost(summary.ElemID(i)); c <= 0 {
				t.Fatalf("%v cost of element %d = %v, must be > 0", scheme, i, c)
			}
		}
	}
}

func TestC3DividesByMatchScore(t *testing.T) {
	ag, _ := buildAug(t)
	seed := ag.Seeds()[0][0] // Publication class, sm = 0.5
	c2 := New(Popularity, ag).ElementCost(seed)
	c3 := New(Matching, ag).ElementCost(seed)
	if got, want := c3, c2/0.5; !almost(got, want) {
		t.Fatalf("C3 = %v, want c2/sm = %v", got, want)
	}
	// Non-keyword elements: sm = 1, so C3 == C2.
	other := ag.Base.Thing()
	if !almost(New(Matching, ag).ElementCost(other), New(Popularity, ag).ElementCost(other)) {
		t.Fatal("C3 should equal C2 for non-keyword elements")
	}
}

func TestC3NeverBelowC2(t *testing.T) {
	ag, _ := buildAug(t)
	c2 := New(Popularity, ag)
	c3 := New(Matching, ag)
	for i := 0; i < ag.NumElements(); i++ {
		id := summary.ElemID(i)
		if c3.ElementCost(id) < c2.ElementCost(id)-1e-12 {
			t.Fatalf("C3 < C2 at element %d", i)
		}
	}
}

func TestPathCost(t *testing.T) {
	ag, st := buildAug(t)
	s := New(PathLength, ag)
	pub := classElem(t, ag, st, "Publication")
	path := []summary.ElemID{pub, ag.Base.Thing()}
	if got := s.PathCost(path); got != 2 {
		t.Fatalf("PathCost = %v, want 2", got)
	}
	if got := s.PathCost(nil); got != 0 {
		t.Fatalf("empty PathCost = %v, want 0", got)
	}
}

func TestSchemeString(t *testing.T) {
	if PathLength.String() != "C1" || Popularity.String() != "C2" || Matching.String() != "C3" {
		t.Fatal("scheme names must match the paper")
	}
}

func almost(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
