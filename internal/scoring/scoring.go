// Package scoring implements the paper's cost functions (Sec. V). Costs
// attach to summary-graph elements; the cost of a path is the sum of its
// elements' costs, and the cost of a matching subgraph is the sum of its
// paths' costs (shared elements counted once per path, which keeps path
// costs locally computable — the property Algorithm 1's cursors rely on).
//
//	C1 (path length):  c(n) = 1
//	C2 (popularity):   c(v) = 1 − |vagg|/|V|,  c(e) = 1 − |eagg|/|E|
//	C3 (matching):     c3(n) = c2(n) / sm(n)
//
// |V| is interpreted as the number of E-vertices and |E| as the number of
// R-edges of the data graph (see the note in package summary), keeping
// every cost in (0, 1] for C1/C2 — strictly positive costs are required
// for the ascending-cost exploration order of Theorem 1.
package scoring

import (
	"fmt"

	"repro/internal/summary"
)

// Scheme selects one of the paper's scoring functions.
type Scheme uint8

const (
	// PathLength is C1: every element costs 1. (Constants start at 1 so
	// that a zero Scheme means "unset" in configuration structs.)
	PathLength Scheme = iota + 1
	// Popularity is C2: popular (highly aggregating) elements cost less.
	Popularity
	// Matching is C3: popularity cost divided by the keyword matching
	// score sm(n), prioritizing elements that match the query well.
	Matching
)

// String names the scheme as in the paper.
func (s Scheme) String() string {
	switch s {
	case PathLength:
		return "C1"
	case Popularity:
		return "C2"
	case Matching:
		return "C3"
	default:
		return fmt.Sprintf("Scheme(%d)", uint8(s))
	}
}

// MinCost is the floor applied to popularity costs so that an element
// aggregating every entity still has a strictly positive cost.
const MinCost = 1e-3

// Scorer computes element costs for one augmented summary graph.
type Scorer struct {
	scheme Scheme
	ag     *summary.Augmented
}

// New builds a scorer for the given scheme over an augmented graph.
func New(scheme Scheme, ag *summary.Augmented) *Scorer {
	return &Scorer{scheme: scheme, ag: ag}
}

// Scheme returns the scorer's scheme.
func (s *Scorer) Scheme() Scheme { return s.scheme }

// ElementCost returns c(n) for a summary-graph element under the scheme.
// It is always strictly positive.
func (s *Scorer) ElementCost(id summary.ElemID) float64 {
	if s.scheme == PathLength {
		return 1
	}
	c := s.popularityCost(id)
	if s.scheme == Matching {
		c /= s.ag.MatchScore(id) // sm ∈ (0,1], so this only increases cost
	}
	return c
}

func (s *Scorer) popularityCost(id summary.ElemID) float64 {
	el := s.ag.Element(id)
	var total int
	if el.Kind.IsVertex() {
		total = s.ag.Base.EntityTotal()
	} else {
		total = s.ag.Base.RelEdgeTotal()
	}
	if total <= 0 {
		return 1
	}
	c := 1 - float64(el.Agg)/float64(total+1)
	if c < MinCost {
		return MinCost
	}
	return c
}

// PathCost sums element costs along a path of element IDs.
func (s *Scorer) PathCost(path []summary.ElemID) float64 {
	var c float64
	for _, id := range path {
		c += s.ElementCost(id)
	}
	return c
}
