// Package trace is the request-scoped span tracer of the serving path: a
// dependency-free, allocation-conscious record of where the time inside
// one query went — keyword lookup vs oracle build vs exploration vs join
// vs shard fan-out — threaded through the online code via
// context.Context, exactly like cancellation already is.
//
// Design discipline matches the core cursor slab: spans live in a flat
// slab owned by the Trace, parents are int32 indices into it (no
// pointers between spans, no per-span heap nodes), timestamps are
// monotonic offsets from one epoch taken at trace start, and Traces are
// recycled through a sync.Pool so a warm server traces requests without
// allocating span storage. When no Trace rides the context — the
// tracing-disabled case every benchmark and library caller hits — every
// instrumentation point degenerates to a single context.Value lookup and
// allocates nothing.
//
// Usage, producer side (the serving layer):
//
//	tr := trace.New("search")
//	ctx = tr.Context(ctx)
//	... run the request ...
//	tr.Finish()
//	nodes := tr.Tree() // render before Release
//	tr.Release()
//
// Usage, instrumentation side (engine, core, exec, shard):
//
//	ctx, sp := trace.StartSpan(ctx, "explore")
//	defer sp.End()
//
// StartSpan parents the new span on the span currently carried by ctx
// and threads itself as the new parent, so nesting falls out of ordinary
// call structure — including across goroutines, because the returned
// context is safe to hand to concurrent children (the slab is internally
// locked; scatter-gather fan-outs each start their own child span from
// the same parent context).
package trace

import (
	"context"
	"sync"
	"time"
)

// SpanID indexes a span inside its Trace's slab. The zero value is the
// root span of the trace.
type SpanID int32

// noParent marks the root span's parent link.
const noParent SpanID = -1

// spanRec is one span in the slab: 8-byte offsets from the trace epoch,
// a parent link by index, and the name/note strings. Records are only
// ever appended; ending a span writes its end offset in place.
type spanRec struct {
	name   string
	note   string
	parent SpanID
	start  int64 // monotonic ns since the trace epoch
	end    int64 // 0 while the span is open
}

// Trace is one request's span tree. It is safe for concurrent use: any
// number of goroutines may start and end spans on it at once (the
// scatter-gather stages do). Create with New, attach to a context with
// Context, and recycle with Release when the request is fully rendered.
type Trace struct {
	mu    sync.Mutex
	epoch time.Time // monotonic reference for every span offset
	spans []spanRec // slab; index 0 is the root span
}

// tracePool recycles Trace slabs across requests.
var tracePool = sync.Pool{New: func() any { return new(Trace) }}

// New checks a Trace out of the pool and opens its root span under the
// given name (typically the endpoint). The root span is open until
// Finish.
func New(rootName string) *Trace {
	t := tracePool.Get().(*Trace)
	t.epoch = time.Now()
	t.spans = append(t.spans[:0], spanRec{name: rootName, parent: noParent})
	return t
}

// Release returns the trace to the pool. The caller must be done with
// every Span handle and rendered view; Tree copies everything out, so
// rendering before Release is safe.
func (t *Trace) Release() {
	tracePool.Put(t)
}

// now returns the monotonic offset from the trace epoch.
func (t *Trace) now() int64 { return int64(time.Since(t.epoch)) }

// start appends an open span and returns its index.
func (t *Trace) start(name string, parent SpanID) SpanID {
	now := t.now()
	t.mu.Lock()
	id := SpanID(len(t.spans))
	t.spans = append(t.spans, spanRec{name: name, parent: parent, start: now})
	t.mu.Unlock()
	return id
}

// Finish closes the root span. Idempotent; later Finish calls keep the
// first end time.
func (t *Trace) Finish() {
	t.end(0)
}

func (t *Trace) end(id SpanID) {
	now := t.now()
	t.mu.Lock()
	if r := &t.spans[id]; r.end == 0 {
		r.end = now
	}
	t.mu.Unlock()
}

func (t *Trace) annotate(id SpanID, note string) {
	t.mu.Lock()
	t.spans[id].note = note
	t.mu.Unlock()
}

// Duration returns the root span's duration — up to Finish when closed,
// up to now while still open.
func (t *Trace) Duration() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if end := t.spans[0].end; end != 0 {
		return time.Duration(end - t.spans[0].start)
	}
	return time.Duration(t.now() - t.spans[0].start)
}

// Span is a cheap by-value handle on one span of one trace. The zero
// Span (from a disabled context) is inert: End and Annotate on it do
// nothing.
type Span struct {
	tr *Trace
	id SpanID
}

// Enabled reports whether the span belongs to a live trace. Use it to
// skip building annotation strings when tracing is off.
func (s Span) Enabled() bool { return s.tr != nil }

// End closes the span. Safe on the zero Span.
func (s Span) End() {
	if s.tr != nil {
		s.tr.end(s.id)
	}
}

// Annotate attaches a short detail string to the span (shard index, row
// counts, ...). Safe on the zero Span; the last note wins.
func (s Span) Annotate(note string) {
	if s.tr != nil {
		s.tr.annotate(s.id, note)
	}
}

// Child starts a child span of s directly, without a context — for call
// sites that hold a Span but no derived context. Safe on the zero Span
// (returns another zero Span).
func (s Span) Child(name string) Span {
	if s.tr == nil {
		return Span{}
	}
	return Span{tr: s.tr, id: s.tr.start(name, s.id)}
}

// ctxKey keys the trace reference in a context. An empty struct key
// boxes to a zero-size interface, so ctx.Value(ctxKey{}) allocates
// nothing.
type ctxKey struct{}

// ctxRef is the context payload: the trace plus the span the context is
// currently "inside", which new spans parent on.
type ctxRef struct {
	tr   *Trace
	span SpanID
}

// Context attaches the trace to ctx with the root span as the current
// parent. Everything downstream of the returned context traces into t.
func (t *Trace) Context(ctx context.Context) context.Context {
	return context.WithValue(ctx, ctxKey{}, ctxRef{tr: t, span: 0})
}

// FromContext returns the trace carried by ctx, or nil when the request
// is untraced.
func FromContext(ctx context.Context) *Trace {
	if ref, ok := ctx.Value(ctxKey{}).(ctxRef); ok {
		return ref.tr
	}
	return nil
}

// StartSpan opens a span named name as a child of the span ctx currently
// carries, and returns a context carrying the new span as parent plus a
// handle to end it. When ctx carries no trace it returns ctx unchanged
// and the inert zero Span — one interface lookup, zero allocations —
// which is what keeps the instrumented hot paths allocation-free for
// untraced callers.
func StartSpan(ctx context.Context, name string) (context.Context, Span) {
	ref, ok := ctx.Value(ctxKey{}).(ctxRef)
	if !ok {
		return ctx, Span{}
	}
	id := ref.tr.start(name, ref.span)
	return context.WithValue(ctx, ctxKey{}, ctxRef{tr: ref.tr, span: id}),
		Span{tr: ref.tr, id: id}
}
