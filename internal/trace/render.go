package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Node is one rendered span: a self-contained copy of the slab record
// with its children attached, safe to keep after the Trace is Released
// and shaped for direct JSON encoding (the /v1 ?trace=1 and
// /debug/slowlog wire format).
type Node struct {
	Name string `json:"name"`
	Note string `json:"note,omitempty"`
	// StartMS is the span's start offset from the request start, in
	// milliseconds (microsecond precision).
	StartMS float64 `json:"start_ms"`
	// DurMS is the span duration in milliseconds. Spans still open at
	// render time report the duration up to the render instant.
	DurMS    float64 `json:"dur_ms"`
	Children []*Node `json:"children,omitempty"`
}

// Tree materializes the span forest — usually a single root — with
// children in start order. The returned nodes share nothing with the
// trace's slab.
func (t *Trace) Tree() []*Node {
	now := t.now()
	t.mu.Lock()
	recs := make([]spanRec, len(t.spans))
	copy(recs, t.spans)
	t.mu.Unlock()

	nodes := make([]*Node, len(recs))
	for i, r := range recs {
		end := r.end
		if end == 0 {
			end = now
		}
		nodes[i] = &Node{
			Name:    r.name,
			Note:    r.note,
			StartMS: float64(r.start/1000) / 1000,
			DurMS:   float64((end-r.start)/1000) / 1000,
		}
	}
	var roots []*Node
	for i, r := range recs {
		if r.parent == noParent {
			roots = append(roots, nodes[i])
			continue
		}
		p := nodes[r.parent]
		p.Children = append(p.Children, nodes[i])
	}
	// Slab order is creation order per goroutine but interleaved across
	// a fan-out; present each child list in start order.
	var sortChildren func(n *Node)
	sortChildren = func(n *Node) {
		sort.SliceStable(n.Children, func(i, j int) bool {
			return n.Children[i].StartMS < n.Children[j].StartMS
		})
		for _, c := range n.Children {
			sortChildren(c)
		}
	}
	for _, r := range roots {
		sortChildren(r)
	}
	return roots
}

// EachSpan calls fn once per recorded span with its name and duration in
// seconds (open spans measured up to now). The serving layer uses it to
// fold a finished request's spans into the per-stage latency histograms.
func (t *Trace) EachSpan(fn func(name string, seconds float64)) {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.spans {
		r := &t.spans[i]
		end := r.end
		if end == 0 {
			end = now
		}
		fn(r.name, float64(end-r.start)/1e9)
	}
}

// Format renders nodes as an indented text tree, for the CLI and logs:
//
//	search                     35.2ms
//	  lookup                    1.1ms
//	  explore                  30.4ms
//	    oracle_build            0.4ms
func Format(nodes []*Node) string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		name := strings.Repeat("  ", depth) + n.Name
		if n.Note != "" {
			name += " [" + n.Note + "]"
		}
		fmt.Fprintf(&b, "%-40s %10.3fms\n", name, n.DurMS)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, n := range nodes {
		walk(n, 0)
	}
	return b.String()
}
