package trace

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeNesting(t *testing.T) {
	tr := New("request")
	ctx := tr.Context(context.Background())

	ctx1, lookup := StartSpan(ctx, "lookup")
	_, inner := StartSpan(ctx1, "fuzzy")
	inner.Annotate("kw=tran")
	inner.End()
	lookup.End()
	_, explore := StartSpan(ctx, "explore")
	explore.End()
	tr.Finish()

	roots := tr.Tree()
	if len(roots) != 1 {
		t.Fatalf("want 1 root, got %d", len(roots))
	}
	root := roots[0]
	if root.Name != "request" || len(root.Children) != 2 {
		t.Fatalf("root = %q with %d children, want request with 2", root.Name, len(root.Children))
	}
	if root.Children[0].Name != "lookup" || root.Children[1].Name != "explore" {
		t.Fatalf("children = %q, %q", root.Children[0].Name, root.Children[1].Name)
	}
	lk := root.Children[0]
	if len(lk.Children) != 1 || lk.Children[0].Name != "fuzzy" || lk.Children[0].Note != "kw=tran" {
		t.Fatalf("lookup children wrong: %+v", lk.Children)
	}
	text := Format(roots)
	for _, want := range []string{"request", "  lookup", "    fuzzy [kw=tran]", "  explore"} {
		if !strings.Contains(text, want) {
			t.Errorf("Format missing %q:\n%s", want, text)
		}
	}
	tr.Release()
}

func TestDurationsMonotone(t *testing.T) {
	tr := New("request")
	ctx := tr.Context(context.Background())
	_, sp := StartSpan(ctx, "work")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	tr.Finish()
	root := tr.Tree()[0]
	child := root.Children[0]
	if child.DurMS < 1 {
		t.Errorf("child span %vms, want ≥ 1ms", child.DurMS)
	}
	if root.DurMS < child.DurMS {
		t.Errorf("root %vms shorter than child %vms", root.DurMS, child.DurMS)
	}
	if child.StartMS < 0 || child.StartMS > root.DurMS {
		t.Errorf("child start %vms outside root [0, %vms]", child.StartMS, root.DurMS)
	}
	tr.Release()
}

// TestConcurrentScatterGather exercises the scatter-gather shape under
// the race detector: one parent context fanned out to many goroutines,
// each starting and ending child spans (with grandchildren) while
// siblings do the same.
func TestConcurrentScatterGather(t *testing.T) {
	tr := New("request")
	ctx := tr.Context(context.Background())
	ctx, gather := StartSpan(ctx, "scatter")

	const shards = 16
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sctx, sp := StartSpan(ctx, "shard")
			for j := 0; j < 8; j++ {
				_, leaf := StartSpan(sctx, "step")
				leaf.End()
			}
			sp.End()
		}()
	}
	wg.Wait()
	gather.End()
	tr.Finish()

	root := tr.Tree()[0]
	if len(root.Children) != 1 {
		t.Fatalf("root has %d children, want 1 (scatter)", len(root.Children))
	}
	sc := root.Children[0]
	if len(sc.Children) != shards {
		t.Fatalf("scatter has %d children, want %d", len(sc.Children), shards)
	}
	for _, sh := range sc.Children {
		if sh.Name != "shard" || len(sh.Children) != 8 {
			t.Fatalf("shard node %q has %d children, want 8", sh.Name, len(sh.Children))
		}
	}
	tr.Release()
}

// TestDisabledPathAllocates0 pins the contract the hot-path
// instrumentation relies on: with no trace in the context, StartSpan,
// End, Annotate, and Child are allocation-free no-ops.
func TestDisabledPathAllocates0(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		c2, sp := StartSpan(ctx, "explore")
		_, sp2 := StartSpan(c2, "oracle_build")
		sp2.Annotate("unused")
		sp2.End()
		sp.Child("x").End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled StartSpan path allocates %.0f/op, want 0", allocs)
	}
	if FromContext(ctx) != nil {
		t.Fatal("FromContext on a bare context should be nil")
	}
}

// TestPoolReuse proves a released trace serves a fresh request cleanly.
func TestPoolReuse(t *testing.T) {
	tr := New("a")
	ctx := tr.Context(context.Background())
	_, sp := StartSpan(ctx, "x")
	sp.End()
	tr.Finish()
	tr.Release()

	tr2 := New("b")
	tr2.Finish()
	roots := tr2.Tree()
	if len(roots) != 1 || roots[0].Name != "b" || len(roots[0].Children) != 0 {
		t.Fatalf("reused trace not reset: %+v", roots)
	}
	tr2.Release()
}

func TestFinishIdempotentAndOpenSpans(t *testing.T) {
	tr := New("r")
	ctx := tr.Context(context.Background())
	StartSpan(ctx, "never-ended")
	tr.Finish()
	d1 := tr.Duration()
	time.Sleep(time.Millisecond)
	tr.Finish()
	if d2 := tr.Duration(); d2 != d1 {
		t.Errorf("second Finish moved root end: %v → %v", d1, d2)
	}
	// Open spans render with a duration up to now rather than zero.
	n := tr.Tree()[0].Children[0]
	if n.DurMS < 0 {
		t.Errorf("open span rendered with negative duration %v", n.DurMS)
	}
	tr.Release()
}

func TestEachSpan(t *testing.T) {
	tr := New("r")
	ctx := tr.Context(context.Background())
	_, a := StartSpan(ctx, "a")
	a.End()
	_, b := StartSpan(ctx, "b")
	b.End()
	tr.Finish()
	got := map[string]int{}
	tr.EachSpan(func(name string, seconds float64) {
		if seconds < 0 {
			t.Errorf("span %s has negative duration", name)
		}
		got[name]++
	})
	if got["r"] != 1 || got["a"] != 1 || got["b"] != 1 {
		t.Errorf("EachSpan visited %v", got)
	}
	tr.Release()
}
