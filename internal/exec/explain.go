package exec

import (
	"fmt"
	"strings"

	"repro/internal/query"
)

// PlanStep describes one step of the join order chosen for a query.
type PlanStep struct {
	// Atom is the query atom evaluated at this step.
	Atom query.Atom
	// Tier is the execution class: 2 = existence check (all positions
	// bound), 1 = index probe on a bound variable, 0 = constant scan.
	Tier int
	// EstMatches is the exact match count of the atom's constant
	// positions — the planner's selectivity signal.
	EstMatches int
}

// String renders the step compactly.
func (s PlanStep) String() string {
	names := [3]string{"scan", "probe", "check"}
	return fmt.Sprintf("%-5s %7d  %s", names[s.Tier], s.EstMatches, s.Atom)
}

// Plan is the ordered evaluation plan of a query.
type Plan struct {
	Steps []PlanStep
	// Empty reports that a constant of the query is absent from the data,
	// so evaluation would return no answers without any joins.
	Empty bool
}

// String renders the plan, one step per line.
func (p *Plan) String() string {
	if p.Empty {
		return "empty result (constant absent from data)"
	}
	var b strings.Builder
	for i, s := range p.Steps {
		fmt.Fprintf(&b, "%2d. %s\n", i+1, s)
	}
	return b.String()
}

// Explain returns the evaluation plan the engine would use for q, without
// executing it — the join order, each step's execution tier, and the
// selectivity estimates that drove the ordering.
func (e *Engine) Explain(q *query.ConjunctiveQuery) (*Plan, error) {
	pats, _, empty, err := e.compile(q)
	if err != nil {
		return nil, err
	}
	if empty {
		return &Plan{Empty: true}, nil
	}
	order := e.planOrder(pats)
	plan := &Plan{}
	boundVar := map[int]bool{}
	for _, idx := range order {
		p := pats[idx]
		// Recompute the tier as the planner saw it at selection time.
		positions, bound := 1, 1
		hasBoundVar := false
		for _, v := range [2]int{p.sv, p.ov} {
			positions++
			if v < 0 {
				bound++
			} else if boundVar[v] {
				bound++
				hasBoundVar = true
			}
		}
		tier := 0
		switch {
		case bound == positions:
			tier = 2
		case hasBoundVar:
			tier = 1
		}
		plan.Steps = append(plan.Steps, PlanStep{
			Atom:       q.Atoms[idx],
			Tier:       tier,
			EstMatches: e.st.Count(p.s, p.p, p.o),
		})
		if p.sv >= 0 {
			boundVar[p.sv] = true
		}
		if p.ov >= 0 {
			boundVar[p.ov] = true
		}
	}
	return plan, nil
}
