package exec

import (
	"fmt"
	"strings"

	"repro/internal/query"
)

// PlanStep describes one step of the join order chosen for a query.
type PlanStep struct {
	// Atom is the query atom evaluated at this step.
	Atom query.Atom
	// Tier is the execution class: 2 = existence check (all positions
	// bound), 1 = index probe on a bound variable, 0 = constant scan.
	Tier int
	// EstMatches is the exact match count of the atom's constant
	// positions — the planner's selectivity signal.
	EstMatches int
}

// String renders the step compactly.
func (s PlanStep) String() string {
	names := [3]string{"scan", "probe", "check"}
	return fmt.Sprintf("%-5s %7d  %s", names[s.Tier], s.EstMatches, s.Atom)
}

// Plan is the ordered evaluation plan of a query.
type Plan struct {
	Steps []PlanStep
	// Empty reports that a constant of the query is absent from the data,
	// so evaluation would return no answers without any joins.
	Empty bool
}

// String renders the plan, one step per line.
func (p *Plan) String() string {
	if p.Empty {
		return "empty result (constant absent from data)"
	}
	var b strings.Builder
	for i, s := range p.Steps {
		fmt.Fprintf(&b, "%2d. %s\n", i+1, s)
	}
	return b.String()
}

// Explain returns the evaluation plan the engine would use for q, without
// executing it — the join order, each step's execution tier, and the
// selectivity estimates that drove the ordering.
func (e *Engine) Explain(q *query.ConjunctiveQuery) (*Plan, error) {
	pats, _, empty, err := e.compile(q)
	if err != nil {
		return nil, err
	}
	if empty {
		return &Plan{Empty: true}, nil
	}
	return ExplainPlan(q, e.metasOf(pats)), nil
}

// ExplainPlan renders the plan the shared planner chooses for a compiled
// query — the tier of each step recomputed as the planner saw it at
// selection time. Shared with the cluster coordinator so explain output
// is identical across deployments.
func ExplainPlan(q *query.ConjunctiveQuery, metas []PatternMeta) *Plan {
	order := GreedyOrder(metas)
	plan := &Plan{}
	boundVar := map[int]bool{}
	for _, idx := range order {
		m := metas[idx]
		plan.Steps = append(plan.Steps, PlanStep{
			Atom:       q.Atoms[idx],
			Tier:       StepTier(m, boundVar),
			EstMatches: m.Count,
		})
		if m.SV >= 0 {
			boundVar[m.SV] = true
		}
		if m.OV >= 0 {
			boundVar[m.OV] = true
		}
	}
	return plan
}
