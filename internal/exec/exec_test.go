package exec

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/store"
)

func ex(l string) rdf.Term { return rdf.NewIRI(rdf.ExampleNS + l) }

func fig1Engine(t *testing.T) (*Engine, *store.Store) {
	t.Helper()
	st := store.New()
	st.AddAll(rdf.MustParseFig1())
	return New(st), st
}

// fig1cQuery is the paper's example conjunctive query (Fig. 1c).
func fig1cQuery() *query.ConjunctiveQuery {
	typ := rdf.NewIRI(rdf.RDFType)
	return &query.ConjunctiveQuery{
		Atoms: []query.Atom{
			{Pred: typ, S: query.Variable("x"), O: query.Constant(ex("Publication"))},
			{Pred: ex("year"), S: query.Variable("x"), O: query.Constant(rdf.NewLiteral("2006"))},
			{Pred: ex("author"), S: query.Variable("x"), O: query.Variable("y")},
			{Pred: ex("name"), S: query.Variable("y"), O: query.Constant(rdf.NewLiteral("P. Cimiano"))},
			{Pred: ex("worksAt"), S: query.Variable("y"), O: query.Variable("z")},
			{Pred: ex("name"), S: query.Variable("z"), O: query.Constant(rdf.NewLiteral("AIFB"))},
		},
		Distinguished: []string{"x", "y", "z"},
	}
}

func TestFig1cQueryAnswers(t *testing.T) {
	e, _ := fig1Engine(t)
	rs, err := e.Execute(fig1cQuery())
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 {
		t.Fatalf("Fig. 1c query should have exactly one answer, got %d:\n%s", rs.Len(), rs)
	}
	row := rs.Rows[0]
	want := []rdf.Term{ex("pub1"), ex("re2"), ex("inst1")}
	if !reflect.DeepEqual(row, want) {
		t.Fatalf("answer = %v, want %v", row, want)
	}
}

func TestExecuteProjection(t *testing.T) {
	e, _ := fig1Engine(t)
	q := fig1cQuery()
	q.Distinguished = []string{"z"}
	rs, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 || rs.Rows[0][0] != ex("inst1") {
		t.Fatalf("projection wrong: %v", rs.Rows)
	}
	if len(rs.Vars) != 1 || rs.Vars[0] != "z" {
		t.Fatalf("vars = %v", rs.Vars)
	}
}

func TestProjectionDeduplicates(t *testing.T) {
	e, _ := fig1Engine(t)
	// Both authors of pub1 yield the same projected publication.
	typ := rdf.NewIRI(rdf.RDFType)
	q := &query.ConjunctiveQuery{
		Atoms: []query.Atom{
			{Pred: typ, S: query.Variable("x"), O: query.Constant(ex("Publication"))},
			{Pred: ex("author"), S: query.Variable("x"), O: query.Variable("y")},
		},
		Distinguished: []string{"x"},
	}
	rs, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 {
		t.Fatalf("distinct projection: got %d rows, want 1\n%s", rs.Len(), rs)
	}
}

func TestExecuteLimit(t *testing.T) {
	e, _ := fig1Engine(t)
	q := &query.ConjunctiveQuery{
		Atoms: []query.Atom{
			{Pred: rdf.NewIRI(rdf.RDFType), S: query.Variable("x"), O: query.Variable("c")},
		},
		Distinguished: []string{"x"},
	}
	rs, err := e.ExecuteLimit(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 3 || !rs.Truncated {
		t.Fatalf("limit: got %d rows, truncated=%v", rs.Len(), rs.Truncated)
	}
	full, _ := e.Execute(q)
	if full.Truncated || full.Len() != 8 {
		t.Fatalf("full run: %d rows, truncated=%v (want 8, false)", full.Len(), full.Truncated)
	}
}

func TestUnknownConstantYieldsEmpty(t *testing.T) {
	e, _ := fig1Engine(t)
	q := &query.ConjunctiveQuery{
		Atoms: []query.Atom{
			{Pred: ex("nosuchpred"), S: query.Variable("x"), O: query.Variable("y")},
		},
	}
	rs, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 0 {
		t.Fatal("unknown predicate should produce no answers")
	}
}

func TestConstantOnlyAtom(t *testing.T) {
	e, _ := fig1Engine(t)
	typ := rdf.NewIRI(rdf.RDFType)
	sub := rdf.NewIRI(rdf.RDFSSubClass)
	// subClassOf(Researcher, Person) holds; the query reduces to type(x, Researcher).
	q := &query.ConjunctiveQuery{
		Atoms: []query.Atom{
			{Pred: typ, S: query.Variable("x"), O: query.Constant(ex("Researcher"))},
			{Pred: sub, S: query.Constant(ex("Researcher")), O: query.Constant(ex("Person"))},
		},
		Distinguished: []string{"x"},
	}
	rs, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 2 {
		t.Fatalf("got %d researchers, want 2", rs.Len())
	}
	// A false schema atom prunes everything.
	q.Atoms[1].O = query.Constant(ex("Project"))
	rs, _ = e.Execute(q)
	if rs.Len() != 0 {
		t.Fatal("false constant atom should produce no answers")
	}
}

func TestRepeatedVariableInAtom(t *testing.T) {
	st := store.New()
	ns := "http://l/"
	st.Add(rdf.NewTriple(rdf.NewIRI(ns+"a"), rdf.NewIRI(ns+"rel"), rdf.NewIRI(ns+"a"))) // self-loop
	st.Add(rdf.NewTriple(rdf.NewIRI(ns+"a"), rdf.NewIRI(ns+"rel"), rdf.NewIRI(ns+"b")))
	e := New(st)
	q := &query.ConjunctiveQuery{
		Atoms: []query.Atom{
			{Pred: rdf.NewIRI(ns + "rel"), S: query.Variable("x"), O: query.Variable("x")},
		},
		Distinguished: []string{"x"},
	}
	rs, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 || rs.Rows[0][0] != rdf.NewIRI(ns+"a") {
		t.Fatalf("self-loop query: %v", rs.Rows)
	}
}

func TestEmptyQueryRejected(t *testing.T) {
	e, _ := fig1Engine(t)
	if _, err := e.Execute(&query.ConjunctiveQuery{}); err == nil {
		t.Fatal("empty query should error")
	}
}

func TestUnknownDistinguishedVarRejected(t *testing.T) {
	e, _ := fig1Engine(t)
	q := &query.ConjunctiveQuery{
		Atoms: []query.Atom{
			{Pred: rdf.NewIRI(rdf.RDFType), S: query.Variable("x"), O: query.Variable("c")},
		},
		Distinguished: []string{"nope"},
	}
	if _, err := e.Execute(q); err == nil {
		t.Fatal("unknown distinguished variable should error")
	}
}

func TestResultSetString(t *testing.T) {
	e, _ := fig1Engine(t)
	rs, _ := e.Execute(fig1cQuery())
	s := rs.String()
	if !strings.Contains(s, "pub1") || !strings.Contains(s, "x\ty\tz") {
		t.Fatalf("String() = %q", s)
	}
}

// naiveExecute evaluates by unconstrained backtracking over all triples —
// the reference semantics of Definition 3.
func naiveExecute(st *store.Store, q *query.ConjunctiveQuery) [][]rdf.Term {
	vars := q.Vars()
	slot := map[string]int{}
	for i, v := range vars {
		slot[v] = i
	}
	binding := make([]rdf.Term, len(vars))
	bound := make([]bool, len(vars))
	var rows [][]rdf.Term
	seen := map[string]bool{}
	var triples []rdf.Triple
	st.ForEach(func(t store.IDTriple) { triples = append(triples, st.Decode(t)) })

	matchArg := func(a query.Arg, t rdf.Term) (ok, fresh bool, idx int) {
		if !a.IsVar() {
			return a.Term == t, false, -1
		}
		i := slot[a.Var]
		if bound[i] {
			return binding[i] == t, false, i
		}
		binding[i] = t
		bound[i] = true
		return true, true, i
	}
	var rec func(i int)
	rec = func(i int) {
		if i == len(q.Atoms) {
			dist := q.Distinguished
			if len(dist) == 0 {
				dist = vars
			}
			row := make([]rdf.Term, len(dist))
			var key strings.Builder
			for j, v := range dist {
				row[j] = binding[slot[v]]
				key.WriteString(row[j].String())
				key.WriteByte('|')
			}
			if !seen[key.String()] {
				seen[key.String()] = true
				rows = append(rows, row)
			}
			return
		}
		at := q.Atoms[i]
		for _, t := range triples {
			if t.P != at.Pred {
				continue
			}
			okS, freshS, idxS := matchArg(at.S, t.S)
			if !okS {
				continue
			}
			okO, freshO, idxO := matchArg(at.O, t.O)
			if okO {
				rec(i + 1)
			}
			if freshO {
				bound[idxO] = false
			}
			if freshS {
				bound[idxS] = false
			}
		}
	}
	rec(0)
	return rows
}

// TestExecuteAgainstNaive cross-checks the planner+joins against the naive
// evaluator on random data and random queries.
func TestExecuteAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	ns := "http://r/"
	for round := 0; round < 25; round++ {
		st := store.New()
		nEnt, nPred := 8, 3
		for i := 0; i < 40; i++ {
			s := rdf.NewIRI(ns + "e" + string(rune('0'+rng.Intn(nEnt))))
			p := rdf.NewIRI(ns + "p" + string(rune('0'+rng.Intn(nPred))))
			o := rdf.NewIRI(ns + "e" + string(rune('0'+rng.Intn(nEnt))))
			st.Add(rdf.NewTriple(s, p, o))
		}
		e := New(st)
		// Random chain query of 1–3 atoms.
		nAtoms := 1 + rng.Intn(3)
		vars := []string{"a", "b", "c", "d"}
		q := &query.ConjunctiveQuery{}
		for i := 0; i < nAtoms; i++ {
			var sArg, oArg query.Arg
			if rng.Intn(4) == 0 {
				sArg = query.Constant(rdf.NewIRI(ns + "e" + string(rune('0'+rng.Intn(nEnt)))))
			} else {
				sArg = query.Variable(vars[i])
			}
			if rng.Intn(4) == 0 {
				oArg = query.Constant(rdf.NewIRI(ns + "e" + string(rune('0'+rng.Intn(nEnt)))))
			} else {
				oArg = query.Variable(vars[i+1])
			}
			q.Atoms = append(q.Atoms, query.Atom{
				Pred: rdf.NewIRI(ns + "p" + string(rune('0'+rng.Intn(nPred)))),
				S:    sArg, O: oArg,
			})
		}
		if len(q.Vars()) == 0 {
			continue
		}
		q.Distinguished = q.Vars()

		rs, err := e.Execute(q)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		want := naiveExecute(st, q)
		if len(rs.Rows) != len(want) {
			t.Fatalf("round %d: got %d rows, want %d\nquery: %s", round, len(rs.Rows), len(want), q)
		}
		if !sameRowSet(rs.Rows, want) {
			t.Fatalf("round %d: row sets differ\nquery: %s", round, q)
		}
	}
}

func sameRowSet(a, b [][]rdf.Term) bool {
	key := func(r []rdf.Term) string {
		var s strings.Builder
		for _, t := range r {
			s.WriteString(t.String())
			s.WriteByte('|')
		}
		return s.String()
	}
	ka := make([]string, len(a))
	kb := make([]string, len(b))
	for i, r := range a {
		ka[i] = key(r)
	}
	for i, r := range b {
		kb[i] = key(r)
	}
	sort.Strings(ka)
	sort.Strings(kb)
	return reflect.DeepEqual(ka, kb)
}

func TestSortRowsDeterministic(t *testing.T) {
	e, _ := fig1Engine(t)
	q := &query.ConjunctiveQuery{
		Atoms: []query.Atom{
			{Pred: rdf.NewIRI(rdf.RDFType), S: query.Variable("x"), O: query.Variable("c")},
		},
		Distinguished: []string{"x", "c"},
	}
	rs, _ := e.Execute(q)
	rs.SortRows()
	for i := 1; i < len(rs.Rows); i++ {
		if rs.Rows[i-1][0].Compare(rs.Rows[i][0]) > 0 {
			t.Fatal("rows not sorted")
		}
	}
}
