package exec

// Tracing-overhead regression for the execute hot path: the plan/join
// spans in ExecuteLimitContext must cost nothing when the context carries
// no trace. A warm execute under a context holding an unrelated value
// (forcing the span lookup's type-assertion miss on every call) may
// allocate at most 2 more than one under a bare context.

import (
	"context"
	"testing"

	"repro/internal/datagen"
	"repro/internal/store"
)

type unrelatedKey struct{}

func TestTracingDisabledExecuteAllocs(t *testing.T) {
	st := store.New()
	st.AddAll(datagen.DBLPTriples(datagen.DBLPConfig{Publications: 1500, Seed: 3}))
	st.Build()
	e := New(st)
	q := benchStarQuery()
	const limit = 10

	if _, err := e.ExecuteLimit(q, limit); err != nil { // warm the pool
		t.Fatal(err)
	}

	bare := context.Background()
	valued := context.WithValue(context.Background(), unrelatedKey{}, 1)
	base := testing.AllocsPerRun(50, func() {
		if _, err := e.ExecuteLimitContext(bare, q, limit); err != nil {
			t.Fatal(err)
		}
	})
	instrumented := testing.AllocsPerRun(50, func() {
		if _, err := e.ExecuteLimitContext(valued, q, limit); err != nil {
			t.Fatal(err)
		}
	})
	if instrumented > base+2 {
		t.Errorf("execute with tracing disabled allocates %.0f/op vs %.0f/op baseline; span no-ops must add ≤ 2",
			instrumented, base)
	}
}
