package exec

// Golden equivalence: the iterative pooled join core must reproduce the
// preserved reference implementation (reference.go) bit-for-bit — same
// variables, same rows in the same discovery order, same Truncated flag —
// on the Fig. 1 example, a DBLP-shaped dataset, and a LUBM dataset,
// across every query shape the executor distinguishes (scans, stars,
// paths, repeated variables, constants at every position, projections,
// filters, limits, absent constants).

import (
	"reflect"
	"testing"

	"repro/internal/datagen"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/store"
)

// goldenCase is one (name, query) pair; every case runs at several
// limits.
type goldenCase struct {
	name string
	q    *query.ConjunctiveQuery
}

func dblpT(name string) rdf.Term { return rdf.NewIRI(datagen.DBLPNS + name) }

func dblpEngine(t *testing.T) *Engine {
	t.Helper()
	st := store.New()
	st.AddAll(datagen.DBLPTriples(datagen.DBLPConfig{Publications: 1500, Seed: 3}))
	return New(st)
}

func dblpGoldenCases() []goldenCase {
	typ := rdf.NewIRI(rdf.RDFType)
	v := query.Variable
	c := query.Constant
	return []goldenCase{
		{"type_scan", &query.ConjunctiveQuery{Atoms: []query.Atom{
			{Pred: typ, S: v("x"), O: c(dblpT("Article"))},
		}}},
		{"full_pred_scan", &query.ConjunctiveQuery{Atoms: []query.Atom{
			{Pred: dblpT("author"), S: v("x"), O: v("y")},
		}}},
		{"star_author_year", &query.ConjunctiveQuery{Atoms: []query.Atom{
			{Pred: typ, S: v("p"), O: c(dblpT("Article"))},
			{Pred: dblpT("author"), S: v("p"), O: v("a")},
			{Pred: dblpT("name"), S: v("a"), O: v("n")},
			{Pred: dblpT("year"), S: v("p"), O: v("y")},
		}}},
		{"path_pub_author_inst", &query.ConjunctiveQuery{Atoms: []query.Atom{
			{Pred: dblpT("author"), S: v("p"), O: v("a")},
			{Pred: dblpT("worksAt"), S: v("a"), O: v("i")},
			{Pred: dblpT("name"), S: v("i"), O: v("n")},
		}, Distinguished: []string{"p", "i"}}},
		{"projected_dedup", &query.ConjunctiveQuery{Atoms: []query.Atom{
			{Pred: dblpT("author"), S: v("p"), O: v("a")},
			{Pred: typ, S: v("p"), O: v("cl")},
		}, Distinguished: []string{"cl"}}},
		{"year_filter", withFilter(&query.ConjunctiveQuery{Atoms: []query.Atom{
			{Pred: typ, S: v("p"), O: c(dblpT("Article"))},
			{Pred: dblpT("year"), S: v("p"), O: v("y")},
		}}, query.Filter{Var: "y", Op: query.OpGE, Value: 2000})},
		{"repeated_var_atom", &query.ConjunctiveQuery{Atoms: []query.Atom{
			{Pred: dblpT("cites"), S: v("x"), O: v("x")},
		}}},
		{"absent_constant", &query.ConjunctiveQuery{Atoms: []query.Atom{
			{Pred: dblpT("author"), S: v("p"), O: c(dblpT("NoSuchEntity"))},
		}}},
		{"constant_subject", &query.ConjunctiveQuery{Atoms: []query.Atom{
			{Pred: typ, S: v("p"), O: c(dblpT("Inproceedings"))},
			{Pred: dblpT("year"), S: v("p"), O: c(rdf.NewLiteral("2005"))},
			{Pred: dblpT("author"), S: v("p"), O: v("a")},
		}}},
		{"disconnected_product", &query.ConjunctiveQuery{Atoms: []query.Atom{
			{Pred: typ, S: v("x"), O: c(dblpT("Author"))},
			{Pred: typ, S: v("y"), O: c(dblpT("Venue"))},
		}}},
	}
}

func lubmGoldenCases() []goldenCase {
	v := query.Variable
	return []goldenCase{
		{"grad_courses", &query.ConjunctiveQuery{Atoms: []query.Atom{
			typePat("x", "GraduateStudent"),
			rel("x", "takesCourse", "y"),
			typePat("y", "GraduateCourse"),
		}, Distinguished: []string{"x", "y"}}},
		{"triangle", &query.ConjunctiveQuery{Atoms: []query.Atom{
			typePat("x", "GraduateStudent"),
			rel("x", "memberOf", "d"),
			rel("d", "subOrganizationOf", "u"),
			rel("x", "undergraduateDegreeFrom", "u"),
		}, Distinguished: []string{"x", "u"}}},
		{"advisor_path", &query.ConjunctiveQuery{Atoms: []query.Atom{
			rel("x", "advisor", "p"),
			rel("p", "worksFor", "d"),
		}, Distinguished: []string{"x", "d"}}},
		{"emails", &query.ConjunctiveQuery{Atoms: []query.Atom{
			typePat("p", "FullProfessor"),
			{Pred: lubm("emailAddress"), S: v("p"), O: v("e")},
		}}},
	}
}

func withFilter(q *query.ConjunctiveQuery, f query.Filter) *query.ConjunctiveQuery {
	q.AddFilter(f)
	return q
}

// assertGoldenEqual compares the optimized executor's result to the
// reference's field by field (everything but Stats, which the reference
// does not compute).
func assertGoldenEqual(t *testing.T, label string, got, want *ResultSet) {
	t.Helper()
	if !reflect.DeepEqual(got.Vars, want.Vars) {
		t.Fatalf("%s: vars = %v, want %v", label, got.Vars, want.Vars)
	}
	if got.Truncated != want.Truncated {
		t.Fatalf("%s: truncated = %v, want %v", label, got.Truncated, want.Truncated)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows, want %d", label, len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		if !reflect.DeepEqual(got.Rows[i], want.Rows[i]) {
			t.Fatalf("%s: row %d = %v, want %v (rows must match in discovery order)",
				label, i, got.Rows[i], want.Rows[i])
		}
	}
}

func runGolden(t *testing.T, e *Engine, cases []goldenCase) {
	t.Helper()
	limits := []int{0, 1, 3, 7, 1000}
	for _, tc := range cases {
		for _, limit := range limits {
			want, errRef := e.ReferenceExecuteLimit(tc.q, limit)
			got, errNew := e.ExecuteLimit(tc.q, limit)
			if (errRef == nil) != (errNew == nil) {
				t.Fatalf("%s/limit=%d: err = %v, reference err = %v", tc.name, limit, errNew, errRef)
			}
			if errRef != nil {
				continue
			}
			assertGoldenEqual(t, tc.name+"/limit="+itoa(limit), got, want)
			// Run the optimized path again: the pooled scratch state must
			// not leak rows, dedup entries, or bindings across queries.
			again, err := e.ExecuteLimit(tc.q, limit)
			if err != nil {
				t.Fatalf("%s/limit=%d (warm): %v", tc.name, limit, err)
			}
			assertGoldenEqual(t, tc.name+"/limit="+itoa(limit)+"/warm", again, want)
		}
	}
}

func TestGoldenEquivalenceFig1(t *testing.T) {
	e, _ := fig1Engine(t)
	typ := rdf.NewIRI(rdf.RDFType)
	v := query.Variable
	cases := []goldenCase{
		{"fig1c", fig1cQuery()},
		{"fig1c_projected", func() *query.ConjunctiveQuery {
			q := fig1cQuery()
			q.Distinguished = []string{"z"}
			return q
		}()},
		{"all_types", &query.ConjunctiveQuery{Atoms: []query.Atom{
			{Pred: typ, S: v("x"), O: v("c")},
		}}},
	}
	runGolden(t, e, cases)
}

// TestGoldenEquivalenceSelfLoops exercises the repeated-variable
// (sameVar) step with data where p(x,x) actually matches. The reference
// enforces S == O here exactly as the distributed executor always has
// (see reference.go on the preserved deviation).
func TestGoldenEquivalenceSelfLoops(t *testing.T) {
	knows := rdf.NewIRI("http://x/knows")
	likes := rdf.NewIRI("http://x/likes")
	a, b, c2 := rdf.NewIRI("http://x/a"), rdf.NewIRI("http://x/b"), rdf.NewIRI("http://x/c")
	st := store.New()
	st.AddAll([]rdf.Triple{
		{S: a, P: knows, O: a},
		{S: a, P: knows, O: b},
		{S: b, P: knows, O: b},
		{S: b, P: knows, O: c2},
		{S: c2, P: knows, O: a},
		{S: a, P: likes, O: b},
		{S: b, P: likes, O: c2},
	})
	e := New(st)
	v := query.Variable
	cases := []goldenCase{
		{"self_loop", &query.ConjunctiveQuery{Atoms: []query.Atom{
			{Pred: knows, S: v("x"), O: v("x")},
		}}},
		{"self_loop_join", &query.ConjunctiveQuery{Atoms: []query.Atom{
			{Pred: knows, S: v("x"), O: v("x")},
			{Pred: likes, S: v("x"), O: v("y")},
		}}},
		{"join_then_self_loop", &query.ConjunctiveQuery{Atoms: []query.Atom{
			{Pred: likes, S: v("x"), O: v("y")},
			{Pred: knows, S: v("y"), O: v("y")},
		}}},
	}
	runGolden(t, e, cases)
	rs, err := e.Execute(cases[0].q)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 2 {
		t.Fatalf("self_loop: %d answers, want 2 (a and b)", rs.Len())
	}
}

func TestGoldenEquivalenceDBLP(t *testing.T) {
	runGolden(t, dblpEngine(t), dblpGoldenCases())
}

func TestGoldenEquivalenceLUBM(t *testing.T) {
	e, _ := lubmEnv(t)
	runGolden(t, e, lubmGoldenCases())
}

// TestGoldenBudgetTruncation pins the MaxSteps regime: when the join
// budget runs out mid-walk, both implementations stop with the same
// partial rows and Truncated set, and the new path reports why.
func TestGoldenBudgetTruncation(t *testing.T) {
	e := dblpEngine(t)
	q := &query.ConjunctiveQuery{Atoms: []query.Atom{
		{Pred: dblpT("author"), S: query.Variable("p"), O: query.Variable("a")},
		{Pred: dblpT("name"), S: query.Variable("a"), O: query.Variable("n")},
	}}
	for _, budget := range []int{1, 10, 157, 5000} {
		e.MaxSteps = budget
		want, err := e.ReferenceExecuteLimit(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.ExecuteLimit(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		assertGoldenEqual(t, "budget="+itoa(budget), got, want)
		if got.Truncated && got.Stats.TruncatedBy != TruncBudget {
			t.Fatalf("budget=%d: TruncatedBy = %q, want %q", budget, got.Stats.TruncatedBy, TruncBudget)
		}
	}
	e.MaxSteps = 0
}

// TestMaxRowsCapsDedupTracking covers the unbounded-memory hazard fix:
// with no caller limit, distinct-answer tracking stops at MaxRows and the
// truncation is surfaced.
func TestMaxRowsCapsDedupTracking(t *testing.T) {
	e := dblpEngine(t)
	q := &query.ConjunctiveQuery{Atoms: []query.Atom{
		{Pred: dblpT("author"), S: query.Variable("p"), O: query.Variable("a")},
	}}
	full, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if full.Truncated {
		t.Fatalf("uncapped run truncated (dataset too large for the test premise)")
	}
	if full.Len() < 20 {
		t.Fatalf("test premise needs ≥ 20 distinct answers, got %d", full.Len())
	}

	e.MaxRows = 10
	capped, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if capped.Len() != 10 {
		t.Fatalf("capped run returned %d rows, want 10", capped.Len())
	}
	if !capped.Truncated || capped.Stats.TruncatedBy != TruncMaxRows {
		t.Fatalf("capped run: truncated=%v by %q, want true by %q",
			capped.Truncated, capped.Stats.TruncatedBy, TruncMaxRows)
	}
	for i := range capped.Rows {
		if !reflect.DeepEqual(capped.Rows[i], full.Rows[i]) {
			t.Fatalf("capped row %d diverges from uncapped prefix", i)
		}
	}

	// An explicit limit below the cap wins and is reported as the limit.
	limited, err := e.ExecuteLimit(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if limited.Len() != 5 || limited.Stats.TruncatedBy != TruncLimit {
		t.Fatalf("limit=5 under MaxRows=10: %d rows, reason %q", limited.Len(), limited.Stats.TruncatedBy)
	}
	e.MaxRows = 0
}

// TestExecStatsCounters sanity-checks the work counters on a query with
// known dedup behavior.
func TestExecStatsCounters(t *testing.T) {
	e, _ := fig1Engine(t)
	typ := rdf.NewIRI(rdf.RDFType)
	q := &query.ConjunctiveQuery{
		Atoms: []query.Atom{
			{Pred: typ, S: query.Variable("x"), O: query.Constant(ex("Publication"))},
			{Pred: ex("author"), S: query.Variable("x"), O: query.Variable("y")},
		},
		Distinguished: []string{"x"},
	}
	rs, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	st := rs.Stats
	if st.JoinIterations <= 0 {
		t.Fatalf("JoinIterations = %d, want > 0", st.JoinIterations)
	}
	// pub1 has two authors: two examined rows project to one answer.
	if st.RowsExamined != 2 || st.RowsDeduped != 1 || rs.Len() != 1 {
		t.Fatalf("examined=%d deduped=%d rows=%d, want 2/1/1", st.RowsExamined, st.RowsDeduped, rs.Len())
	}
	if st.TruncatedBy != TruncNone {
		t.Fatalf("TruncatedBy = %q, want none", st.TruncatedBy)
	}
}
