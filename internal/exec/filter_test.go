package exec

import (
	"testing"

	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/store"
)

func TestExecuteWithFilter(t *testing.T) {
	st := store.New()
	ns := "http://f/"
	year := rdf.NewIRI(ns + "year")
	for i, y := range []string{"1999", "2004", "2005", "2010"} {
		pub := rdf.NewIRI(ns + "p" + string(rune('0'+i)))
		st.Add(rdf.NewTriple(pub, year, rdf.NewLiteral(y)))
	}
	e := New(st)
	q := &query.ConjunctiveQuery{
		Atoms: []query.Atom{
			{Pred: year, S: query.Variable("p"), O: query.Variable("y")},
		},
		Filters:       []query.Filter{{Var: "y", Op: query.OpLT, Value: 2005}},
		Distinguished: []string{"p", "y"},
	}
	rs, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 2 { // 1999, 2004
		t.Fatalf("filtered rows = %d, want 2:\n%s", rs.Len(), rs)
	}
	// Boundary: <= includes 2005.
	q.Filters[0].Op = query.OpLE
	rs, _ = e.Execute(q)
	if rs.Len() != 3 {
		t.Fatalf("<= filter rows = %d, want 3", rs.Len())
	}
	// > excludes everything up to 2005.
	q.Filters[0].Op = query.OpGT
	rs, _ = e.Execute(q)
	if rs.Len() != 1 {
		t.Fatalf("> filter rows = %d, want 1", rs.Len())
	}
}

func TestFilterOnNonNumericValueRejects(t *testing.T) {
	st := store.New()
	ns := "http://f/"
	p := rdf.NewIRI(ns + "attr")
	st.Add(rdf.NewTriple(rdf.NewIRI(ns+"e"), p, rdf.NewLiteral("not-a-number")))
	e := New(st)
	q := &query.ConjunctiveQuery{
		Atoms:         []query.Atom{{Pred: p, S: query.Variable("x"), O: query.Variable("v")}},
		Filters:       []query.Filter{{Var: "v", Op: query.OpGT, Value: 0}},
		Distinguished: []string{"x"},
	}
	rs, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 0 {
		t.Fatal("non-numeric value must not satisfy a numeric filter")
	}
}

func TestFilterUnknownVariableRejected(t *testing.T) {
	st := store.New()
	p := rdf.NewIRI("http://f/p")
	st.Add(rdf.NewTriple(rdf.NewIRI("http://f/a"), p, rdf.NewIRI("http://f/b")))
	e := New(st)
	q := &query.ConjunctiveQuery{
		Atoms:   []query.Atom{{Pred: p, S: query.Variable("x"), O: query.Variable("y")}},
		Filters: []query.Filter{{Var: "nope", Op: query.OpLT, Value: 1}},
	}
	if _, err := e.Execute(q); err == nil {
		t.Fatal("filter on unknown variable should error")
	}
}

func TestMaxStepsTruncates(t *testing.T) {
	st := store.New()
	ns := "http://m/"
	p := rdf.NewIRI(ns + "p")
	// A 3-pattern chain over a dense relation forces many join steps.
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			st.Add(rdf.NewTriple(rdf.NewIRI(ns+"a"+itoa(i)), p, rdf.NewIRI(ns+"a"+itoa(j))))
		}
	}
	e := New(st)
	e.MaxSteps = 100
	q := &query.ConjunctiveQuery{
		Atoms: []query.Atom{
			{Pred: p, S: query.Variable("x"), O: query.Variable("y")},
			{Pred: p, S: query.Variable("y"), O: query.Variable("z")},
		},
		Distinguished: []string{"x", "z"},
	}
	rs, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Truncated {
		t.Fatal("step budget exceeded but result not marked truncated")
	}
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}
