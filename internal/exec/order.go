package exec

// The greedy join planner, factored out so the single engine and the
// sharded cluster coordinator (internal/shard) run the *same* code: the
// cluster's documented plan-equivalence guarantee — identical join
// orders, tiers, and selectivity estimates — holds because both callers
// feed this planner, differing only in where the counts come from (one
// store vs. a scatter-sum over disjoint partitions).

// PatternMeta describes one compiled pattern to the planner: its
// variable slots (-1 = constant position) and the exact match count of
// its constant positions (the selectivity signal; variable bindings are
// unknown at planning time).
type PatternMeta struct {
	SV, OV int
	Count  int
}

// StepTier returns a pattern's execution tier given the variables bound
// so far:
//
//	tier 2 — every position bound (constant or previously bound variable):
//	         a pure existence check, essentially free;
//	tier 1 — at least one bound variable: an index probe whose per-binding
//	         fan-out is the average degree, far below any scan;
//	tier 0 — constants only: a scan of the constant-prefix range.
func StepTier(p PatternMeta, boundVar map[int]bool) int {
	positions := 1 // predicate
	bound := 1
	hasBoundVar := false
	for _, v := range [2]int{p.SV, p.OV} {
		positions++
		if v < 0 {
			bound++ // constant
		} else if boundVar[v] {
			bound++
			hasBoundVar = true
		}
	}
	switch {
	case bound == positions:
		return 2
	case hasBoundVar:
		return 1
	default:
		return 0
	}
}

// GreedyOrder orders patterns greedily by execution tier, breaking ties
// within a tier by the exact match count of the constant positions (most
// selective first). Deferring unconnected patterns to the end falls out
// naturally: they stay tier 0 until a shared variable binds.
func GreedyOrder(pats []PatternMeta) []int {
	n := len(pats)
	used := make([]bool, n)
	boundVar := map[int]bool{}
	out := make([]int, 0, n)
	for len(out) < n {
		best, bestScore := -1, int64(0)
		for i, p := range pats {
			if used[i] {
				continue
			}
			const weight = int64(1) << 40
			score := int64(StepTier(p, boundVar))*weight - int64(p.Count)
			if best == -1 || score > bestScore {
				best, bestScore = i, score
			}
		}
		p := pats[best]
		used[best] = true
		out = append(out, best)
		if p.SV >= 0 {
			boundVar[p.SV] = true
		}
		if p.OV >= 0 {
			boundVar[p.OV] = true
		}
	}
	return out
}
