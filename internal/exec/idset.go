package exec

import "repro/internal/store"

// IDSet is a fixed-width, open-addressing set of ID tuples — the
// answer-dedup structure of the join core and of the sharded
// coordinator's distributed executor. A row key is w dictionary IDs (the
// projection of a binding onto the distinguished variables); keys live
// packed in one flat arena and the hash table stores int32 arena indexes,
// so membership tests touch two small contiguous arrays and inserting a
// row performs no per-row allocation (arena and table growth is
// amortized, and both retain capacity across Reset for pooled reuse).
//
// The zero value is ready after Reset. Not safe for concurrent use.
type IDSet struct {
	w     int        // key width in IDs
	keys  []store.ID // packed arena: key i occupies keys[i*w : (i+1)*w]
	table []int32    // open addressing, -1 = empty, else arena index
	n     int
}

// minIDSetTable keeps the probe table a power of two; 256 slots cover
// typical result cardinalities without an early grow.
const minIDSetTable = 256

// Reset empties the set and fixes the key width for the next query,
// retaining the arena and table capacity of previous uses — unless one
// past large query grew the table far beyond what the last query used,
// in which case the table shrinks back: the -1 refill of retained
// capacity is Reset's only per-query cost, and a pooled set must not
// make every later small query pay for one degenerate big one.
func (s *IDSet) Reset(w int) {
	s.w = w
	if len(s.table) > minIDSetTable && s.n*8 < len(s.table) {
		size := minIDSetTable
		for size < s.n*4 {
			size *= 2
		}
		s.table = make([]int32, size)
	}
	s.n = 0
	s.keys = s.keys[:0]
	if len(s.table) < minIDSetTable {
		s.table = make([]int32, minIDSetTable)
	}
	for i := range s.table {
		s.table[i] = -1
	}
}

// Len returns the number of distinct keys inserted since Reset.
func (s *IDSet) Len() int { return s.n }

// Insert adds key (len(key) must equal the Reset width) and reports
// whether it was absent. The key is copied; the caller may reuse the
// slice.
func (s *IDSet) Insert(key []store.ID) bool {
	mask := uint32(len(s.table) - 1)
	i := hashIDs(key) & mask
	for {
		e := s.table[i]
		if e < 0 {
			s.table[i] = int32(s.n)
			s.keys = append(s.keys, key...)
			s.n++
			if s.n*2 >= len(s.table) {
				s.grow()
			}
			return true
		}
		if s.keyEqual(int(e), key) {
			return false
		}
		i = (i + 1) & mask
	}
}

func (s *IDSet) keyEqual(idx int, key []store.ID) bool {
	at := s.keys[idx*s.w : idx*s.w+s.w]
	for i, id := range key {
		if at[i] != id {
			return false
		}
	}
	return true
}

// grow doubles the probe table and rehashes the arena indexes. Keys are
// never moved.
func (s *IDSet) grow() {
	next := make([]int32, 2*len(s.table))
	for i := range next {
		next[i] = -1
	}
	mask := uint32(len(next) - 1)
	for idx := 0; idx < s.n; idx++ {
		key := s.keys[idx*s.w : idx*s.w+s.w]
		i := hashIDs(key) & mask
		for next[i] >= 0 {
			i = (i + 1) & mask
		}
		next[i] = int32(idx)
	}
	s.table = next
}

// hashIDs is FNV-1a over the IDs, folded to 32 bits.
func hashIDs(key []store.ID) uint32 {
	h := uint64(14695981039346656037)
	for _, id := range key {
		h ^= uint64(id)
		h *= 1099511628211
	}
	return uint32(h ^ h>>32)
}
