package exec

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/store"
)

// randomDeltaWorld builds a base store, a delta over it, and the merged
// reference store, from one shared triple universe.
func randomDeltaWorld(rng *rand.Rand, nBase, nDelta int) (*store.Store, *store.DeltaSnap, *store.Store) {
	mk := func(n, subjects, preds, objects int) []rdf.Triple {
		ts := make([]rdf.Triple, n)
		for i := range ts {
			ts[i] = rdf.Triple{
				S: rdf.NewIRI(fmt.Sprintf("http://x/s%d", rng.Intn(subjects))),
				P: rdf.NewIRI(fmt.Sprintf("http://x/p%d", rng.Intn(preds))),
				O: rdf.NewIRI(fmt.Sprintf("http://x/o%d", rng.Intn(objects))),
			}
		}
		return ts
	}
	baseTs := mk(nBase, 8, 4, 8)
	deltaTs := mk(nDelta, 12, 5, 12) // wider universe → some new terms

	base := store.New()
	base.AddAll(baseTs)
	base.Build()
	d := store.NewDelta(base)
	for _, tr := range deltaTs {
		d.Add(tr)
	}
	snap := d.Snapshot()
	return base, snap, store.MergeDelta(base, snap)
}

// randomPatternQuery builds a random 1–3 atom conjunctive query whose
// predicates come from the shared universe.
func randomPatternQuery(rng *rand.Rand) *query.ConjunctiveQuery {
	vars := []string{"x", "y", "z"}
	n := 1 + rng.Intn(3)
	q := &query.ConjunctiveQuery{}
	for i := 0; i < n; i++ {
		at := query.Atom{Pred: rdf.NewIRI(fmt.Sprintf("http://x/p%d", rng.Intn(5)))}
		if rng.Intn(3) > 0 {
			at.S = query.Variable(vars[rng.Intn(len(vars))])
		} else {
			at.S = query.Constant(rdf.NewIRI(fmt.Sprintf("http://x/s%d", rng.Intn(12))))
		}
		if rng.Intn(3) > 0 {
			at.O = query.Variable(vars[rng.Intn(len(vars))])
		} else {
			at.O = query.Constant(rdf.NewIRI(fmt.Sprintf("http://x/o%d", rng.Intn(12))))
		}
		q.Atoms = append(q.Atoms, at)
	}
	seen := map[string]bool{}
	for _, at := range q.Atoms {
		if at.S.IsVar() && !seen[at.S.Var] {
			seen[at.S.Var] = true
			q.Distinguished = append(q.Distinguished, at.S.Var)
		}
		if at.O.IsVar() && !seen[at.O.Var] {
			seen[at.O.Var] = true
			q.Distinguished = append(q.Distinguished, at.O.Var)
		}
	}
	if len(q.Distinguished) == 0 {
		// All-constant query: still legal, no distinguished vars needed.
		q.Distinguished = nil
	}
	return q
}

// TestExecuteDeltaMatchesMergedStore is the executor's overlay contract:
// evaluating with a delta overlay must be bit-identical — rows, order,
// truncation — to evaluating the merged store.
func TestExecuteDeltaMatchesMergedStore(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 30; round++ {
		base, snap, merged := randomDeltaWorld(rng, 60, 25)
		overlay := New(base)
		ref := New(merged)
		for qi := 0; qi < 20; qi++ {
			q := randomPatternQuery(rng)
			limit := 0
			if rng.Intn(2) == 0 {
				limit = 1 + rng.Intn(5)
			}
			got, err := overlay.ExecuteLimitContextDelta(context.Background(), q, limit, snap)
			if err != nil {
				t.Fatalf("round %d q %d: overlay: %v", round, qi, err)
			}
			want, err := ref.ExecuteLimitContext(context.Background(), q, limit)
			if err != nil {
				t.Fatalf("round %d q %d: merged: %v", round, qi, err)
			}
			if got.Truncated != want.Truncated || !reflect.DeepEqual(got.Rows, want.Rows) {
				t.Fatalf("round %d q %d: overlay diverges from merged store\nquery: %+v\ngot  (%d rows, trunc=%v): %v\nwant (%d rows, trunc=%v): %v",
					round, qi, q, got.Len(), got.Truncated, got.Rows, want.Len(), want.Truncated, want.Rows)
			}
		}
	}
}

// TestExecuteDeltaNewTermsOnly: constants that exist only in the delta
// must resolve (extension dictionary) and join against base rows.
func TestExecuteDeltaNewTermsOnly(t *testing.T) {
	base := store.New()
	base.AddAll(rdf.MustParseFig1())
	base.Build()

	d := store.NewDelta(base)
	pub9 := rdf.NewIRI(rdf.ExampleNS + "pub9")
	d.Add(rdf.Triple{S: pub9, P: ex("author"), O: ex("re2")})
	d.Add(rdf.Triple{S: pub9, P: ex("year"), O: rdf.NewLiteral("2026")})
	snap := d.Snapshot()

	e := New(base)
	q := &query.ConjunctiveQuery{
		Atoms: []query.Atom{
			{Pred: ex("year"), S: query.Variable("x"), O: query.Constant(rdf.NewLiteral("2026"))},
			{Pred: ex("author"), S: query.Variable("x"), O: query.Variable("y")},
			{Pred: ex("name"), S: query.Variable("y"), O: query.Variable("n")},
		},
		Distinguished: []string{"x", "n"},
	}

	// Without the overlay the new year literal is unknown → empty.
	rs, err := e.ExecuteLimitContext(context.Background(), q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 0 {
		t.Fatalf("sealed engine sees unacknowledged delta: %v", rs.Rows)
	}

	rs, err = e.ExecuteLimitContextDelta(context.Background(), q, 0, snap)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 {
		t.Fatalf("overlay query: got %d rows, want 1: %v", rs.Len(), rs.Rows)
	}
	if rs.Rows[0][0] != pub9 || rs.Rows[0][1] != rdf.NewLiteral("P. Cimiano") {
		t.Fatalf("overlay row = %v", rs.Rows[0])
	}
}

// TestExecuteDeltaEmptyNoExtraAllocs is the satellite guard: with a nil
// or empty delta, the execute hot path must allocate exactly what the
// sealed-engine path does.
func TestExecuteDeltaEmptyNoExtraAllocs(t *testing.T) {
	base := store.New()
	base.AddAll(rdf.MustParseFig1())
	base.Build()
	e := New(base)
	q := fig1cQuery()
	ctx := context.Background()

	// Warm the pool.
	for i := 0; i < 5; i++ {
		if _, err := e.ExecuteLimitContext(ctx, q, 0); err != nil {
			t.Fatal(err)
		}
	}

	sealed := testing.AllocsPerRun(100, func() {
		if _, err := e.ExecuteLimitContext(ctx, q, 0); err != nil {
			t.Fatal(err)
		}
	})
	nilDelta := testing.AllocsPerRun(100, func() {
		if _, err := e.ExecuteLimitContextDelta(ctx, q, 0, nil); err != nil {
			t.Fatal(err)
		}
	})
	emptySnap := store.NewDelta(base).Snapshot()
	emptyDelta := testing.AllocsPerRun(100, func() {
		if _, err := e.ExecuteLimitContextDelta(ctx, q, 0, emptySnap); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("warm allocs/op: sealed=%.0f nil-delta=%.0f empty-delta=%.0f", sealed, nilDelta, emptyDelta)
	if nilDelta > sealed {
		t.Fatalf("nil-delta path allocates %.0f/op vs sealed %.0f/op", nilDelta, sealed)
	}
	if emptyDelta > sealed {
		t.Fatalf("empty-delta path allocates %.0f/op vs sealed %.0f/op", emptyDelta, sealed)
	}
}
