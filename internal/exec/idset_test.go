package exec

import (
	"math/rand"
	"testing"

	"repro/internal/store"
)

// TestIDSetMembership drives random ID tuples with duplicates through
// the set and checks Insert's answers against a map oracle.
func TestIDSetMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, w := range []int{0, 1, 2, 5} {
		var s IDSet
		s.Reset(w)
		oracle := map[[5]store.ID]bool{}
		key := make([]store.ID, w)
		for i := 0; i < 5000; i++ {
			var ok [5]store.ID
			for j := 0; j < w; j++ {
				key[j] = store.ID(rng.Intn(40)) // few values → many duplicates
				ok[j] = key[j]
			}
			want := !oracle[ok]
			oracle[ok] = true
			if got := s.Insert(key); got != want {
				t.Fatalf("w=%d insert %d (%v): new=%v, want %v", w, i, key, got, want)
			}
		}
		if s.Len() != len(oracle) {
			t.Fatalf("w=%d: Len=%d, want %d", w, s.Len(), len(oracle))
		}
	}
}

// TestIDSetResetShrinks pins the pooled-reuse cost bound: after one
// degenerate large query, a Reset following a small query shrinks the
// probe table back, so later small queries do not pay an
// O(max-historical-size) refill forever.
func TestIDSetResetShrinks(t *testing.T) {
	var s IDSet
	s.Reset(1)
	for i := 1; i <= 200_000; i++ {
		s.Insert([]store.ID{store.ID(i)})
	}
	big := len(s.table)
	if big <= minIDSetTable {
		t.Fatalf("premise: table did not grow (len %d)", big)
	}

	// The query right after the big one keeps the big table (its own n
	// was large); a small query then triggers the shrink on the next
	// Reset.
	s.Reset(1)
	for i := 1; i <= 10; i++ {
		s.Insert([]store.ID{store.ID(i)})
	}
	s.Reset(1)
	if len(s.table) >= big {
		t.Fatalf("table did not shrink after a small query: len %d (was %d)", len(s.table), big)
	}
	// And the shrunk set still answers correctly.
	if !s.Insert([]store.ID{7}) || s.Insert([]store.ID{7}) {
		t.Fatal("membership wrong after shrink")
	}
}
