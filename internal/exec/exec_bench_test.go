package exec

// Execute-path microbenchmarks and allocation regressions. The
// BenchmarkExecute* pairs measure the iterative pooled join core against
// the preserved reference implementation on the same engine, and
// TestExecuteWarmAllocs pins the headline property of the rewrite: a warm
// ExecuteLimit on a cached query shape allocates at least 10× less than
// the reference (in practice it allocates only the surviving rows).

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/store"
)

func benchDBLPEngine(b *testing.B) *Engine {
	b.Helper()
	st := store.New()
	st.AddAll(datagen.DBLPTriples(datagen.DBLPConfig{Publications: 1500, Seed: 3}))
	st.Build()
	return New(st)
}

func benchStarQuery() *query.ConjunctiveQuery {
	typ := rdf.NewIRI(rdf.RDFType)
	v := query.Variable
	return &query.ConjunctiveQuery{Atoms: []query.Atom{
		{Pred: typ, S: v("p"), O: query.Constant(dblpT("Article"))},
		{Pred: dblpT("author"), S: v("p"), O: v("a")},
		{Pred: dblpT("name"), S: v("a"), O: v("n")},
		{Pred: dblpT("year"), S: v("p"), O: v("y")},
	}}
}

func benchPathQuery() *query.ConjunctiveQuery {
	v := query.Variable
	return &query.ConjunctiveQuery{Atoms: []query.Atom{
		{Pred: dblpT("author"), S: v("p"), O: v("a")},
		{Pred: dblpT("worksAt"), S: v("a"), O: v("i")},
		{Pred: dblpT("name"), S: v("i"), O: v("n")},
	}, Distinguished: []string{"p", "i"}}
}

func runExecBenchmark(b *testing.B, q *query.ConjunctiveQuery, limit int) {
	e := benchDBLPEngine(b)
	b.Run("pooled", func(b *testing.B) {
		if _, err := e.ExecuteLimit(q, limit); err != nil { // warm the pool
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.ExecuteLimit(q, limit); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.ReferenceExecuteLimit(q, limit); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkExecuteStar(b *testing.B)        { runExecBenchmark(b, benchStarQuery(), 0) }
func BenchmarkExecuteStarLimit10(b *testing.B) { runExecBenchmark(b, benchStarQuery(), 10) }
func BenchmarkExecutePath(b *testing.B)        { runExecBenchmark(b, benchPathQuery(), 0) }

func BenchmarkExecuteLUBMTriangle(b *testing.B) {
	st := store.New()
	st.AddAll(datagen.LUBMTriples(datagen.LUBMConfig{Universities: 1, Seed: 5, Compact: true}))
	st.Build()
	e := New(st)
	q := &query.ConjunctiveQuery{Atoms: []query.Atom{
		typePat("x", "GraduateStudent"),
		rel("x", "memberOf", "d"),
		rel("d", "subOrganizationOf", "u"),
		rel("x", "undergraduateDegreeFrom", "u"),
	}, Distinguished: []string{"x", "u"}}
	b.Run("pooled", func(b *testing.B) {
		if _, err := e.Execute(q); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Execute(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.ReferenceExecuteLimit(q, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestExecuteWarmAllocs is the allocation regression of the acceptance
// criterion: warm ExecuteLimit on a cached query shape allocates ≥ 10×
// less than the reference implementation, and its absolute allocation
// count is bounded by the rows it returns (plus a small constant), not by
// the rows it scans.
func TestExecuteWarmAllocs(t *testing.T) {
	st := store.New()
	st.AddAll(datagen.DBLPTriples(datagen.DBLPConfig{Publications: 1500, Seed: 3}))
	st.Build()
	e := New(st)
	q := benchStarQuery()
	const limit = 10

	rs, err := e.ExecuteLimit(q, limit) // warm pool, pin row count
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != limit {
		t.Fatalf("premise: want %d rows, got %d", limit, rs.Len())
	}

	newAllocs := testing.AllocsPerRun(50, func() {
		if _, err := e.ExecuteLimit(q, limit); err != nil {
			t.Fatal(err)
		}
	})
	refAllocs := testing.AllocsPerRun(50, func() {
		if _, err := e.ReferenceExecuteLimit(q, limit); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("star/limit=%d warm allocs/op: pooled=%.0f reference=%.0f (%.1f×)",
		limit, newAllocs, refAllocs, refAllocs/newAllocs)
	// Row materialization (1 slice per surviving row) + result set +
	// pooled-state checkout should be all that remains.
	if maxWarm := float64(3*limit + 16); newAllocs > maxWarm {
		t.Fatalf("pooled executor allocates %.0f/op, want ≤ %.0f (rows + small constant)", newAllocs, maxWarm)
	}
	if newAllocs >= refAllocs {
		t.Fatalf("pooled executor allocates %.0f/op vs reference %.0f/op — no reduction", newAllocs, refAllocs)
	}

	// The ≥ 10× criterion holds on any shape where the join examines more
	// bindings than survive projection — the shape candidate queries have
	// in practice (selective constants, deduplicating projections). The
	// reference allocates per examined binding (iterators, keys, map
	// cells); the pooled core allocates per surviving row only.
	dedup := &query.ConjunctiveQuery{Atoms: []query.Atom{
		{Pred: dblpT("author"), S: query.Variable("p"), O: query.Variable("a")},
		{Pred: rdf.NewIRI(rdf.RDFType), S: query.Variable("p"), O: query.Variable("cl")},
	}, Distinguished: []string{"cl"}}
	if _, err := e.Execute(dedup); err != nil {
		t.Fatal(err)
	}
	newDedup := testing.AllocsPerRun(20, func() {
		if _, err := e.Execute(dedup); err != nil {
			t.Fatal(err)
		}
	})
	refDedup := testing.AllocsPerRun(20, func() {
		if _, err := e.ReferenceExecuteLimit(dedup, 0); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("dedup-heavy warm allocs/op: pooled=%.0f reference=%.0f (%.1f×)",
		newDedup, refDedup, refDedup/newDedup)
	if newDedup*10 > refDedup {
		t.Fatalf("pooled executor allocates %.0f/op vs reference %.0f/op — less than the required 10× reduction",
			newDedup, refDedup)
	}
}
