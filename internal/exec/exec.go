// Package exec is the repository's "underlying database engine" (the role
// Semplore plays in the paper's evaluation, Sec. VII-B): it evaluates
// conjunctive queries — basic graph patterns — against the triple store
// and returns the answers of Definition 3.
//
// Evaluation is index-nested-loop join over the store's SPO/POS/OSP
// indexes with a greedy, selectivity-based join order: at every step the
// most-bound pattern (fewest unbound positions, smallest exact match count
// for its bound prefix) is evaluated next. Answers are the distinct
// projections onto the distinguished variables.
package exec

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/store"
)

// Engine evaluates conjunctive queries against one store. It is stateless
// apart from the store reference and safe for concurrent use once the
// store is built.
type Engine struct {
	st *store.Store
	// MaxSteps bounds the number of join iterations per query as a
	// defense against degenerate plans (e.g. empty cartesian products
	// from variable-disconnected queries); 0 applies DefaultMaxSteps.
	// When the budget is exhausted the result is marked Truncated.
	MaxSteps int
}

// DefaultMaxSteps is the per-query join-iteration budget.
const DefaultMaxSteps = 20_000_000

// New returns an engine over st.
func New(st *store.Store) *Engine { return &Engine{st: st} }

// ResultSet holds the answers to a conjunctive query.
type ResultSet struct {
	// Vars are the distinguished variables, in query order.
	Vars []string
	// Rows holds one term per variable per answer, deduplicated.
	Rows [][]rdf.Term
	// Truncated is true when evaluation stopped at a row limit.
	Truncated bool
}

// Len returns the number of answers.
func (r *ResultSet) Len() int { return len(r.Rows) }

// String renders a compact table of the answers.
func (r *ResultSet) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", strings.Join(r.Vars, "\t"))
	for _, row := range r.Rows {
		for i, t := range row {
			if i > 0 {
				b.WriteByte('\t')
			}
			if t.IsLiteral() {
				b.WriteString(t.Value)
			} else {
				b.WriteString(t.LocalName())
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// pattern is a compiled query atom: constants resolved to dictionary IDs,
// variables to dense variable slots.
type pattern struct {
	s, p, o  store.ID // 0 (Wildcard) when the position is a variable
	sv, ov   int      // variable slot, -1 when constant
	numConst int
}

// Execute evaluates q and returns all answers.
func (e *Engine) Execute(q *query.ConjunctiveQuery) (*ResultSet, error) {
	return e.ExecuteLimit(q, 0)
}

// ExecuteContext evaluates q under a context; see ExecuteLimitContext.
func (e *Engine) ExecuteContext(ctx context.Context, q *query.ConjunctiveQuery) (*ResultSet, error) {
	return e.ExecuteLimitContext(ctx, q, 0)
}

// compile resolves a query's atoms to dictionary-encoded patterns and
// variable slots. empty reports that some constant is absent from the
// dictionary, making the query trivially unsatisfiable.
func (e *Engine) compile(q *query.ConjunctiveQuery) (pats []pattern, slots map[string]int, empty bool, err error) {
	if len(q.Atoms) == 0 {
		return nil, nil, false, fmt.Errorf("exec: query has no atoms")
	}
	slots = map[string]int{}
	slotOf := func(a query.Arg) int {
		if !a.IsVar() {
			return -1
		}
		s, ok := slots[a.Var]
		if !ok {
			s = len(slots)
			slots[a.Var] = s
		}
		return s
	}
	pats = make([]pattern, 0, len(q.Atoms))
	for _, at := range q.Atoms {
		p := pattern{sv: slotOf(at.S), ov: slotOf(at.O)}
		pid, ok := e.st.Lookup(at.Pred)
		if !ok {
			return nil, slots, true, nil // predicate absent from the data
		}
		p.p = pid
		p.numConst = 1
		if p.sv < 0 {
			sid, ok := e.st.Lookup(at.S.Term)
			if !ok {
				return nil, slots, true, nil
			}
			p.s = sid
			p.numConst++
		}
		if p.ov < 0 {
			oid, ok := e.st.Lookup(at.O.Term)
			if !ok {
				return nil, slots, true, nil
			}
			p.o = oid
			p.numConst++
		}
		pats = append(pats, p)
	}
	return pats, slots, false, nil
}

// ExecuteLimit evaluates q, stopping once limit distinct answers exist
// (limit ≤ 0 means no limit). This is the "process queries until at least
// 10 answers are found" operation of the Fig. 5 experiment.
func (e *Engine) ExecuteLimit(q *query.ConjunctiveQuery, limit int) (*ResultSet, error) {
	return e.ExecuteLimitContext(context.Background(), q, limit)
}

// ctxCheckInterval is how many join iterations go by between context
// polls inside the nested-loop walk.
const ctxCheckInterval = 8192

// ExecuteLimitContext is ExecuteLimit under a context: the join loop
// polls ctx every ctxCheckInterval iterations and returns ctx.Err() when
// the context is cancelled or its deadline passes, so a slow query stops
// burning CPU promptly instead of running to completion.
func (e *Engine) ExecuteLimitContext(ctx context.Context, q *query.ConjunctiveQuery, limit int) (*ResultSet, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pats, slots, empty, err := e.compile(q)
	if err != nil {
		return nil, err
	}
	if empty {
		return emptyResult(q), nil
	}

	dist := q.Distinguished
	if len(dist) == 0 {
		dist = q.Vars()
	}
	projSlots := make([]int, 0, len(dist))
	for _, v := range dist {
		s, ok := slots[v]
		if !ok {
			return nil, fmt.Errorf("exec: distinguished variable ?%s does not occur in the query", v)
		}
		projSlots = append(projSlots, s)
	}

	// Compile filters to variable slots.
	type slotFilter struct {
		slot int
		f    query.Filter
	}
	var filters []slotFilter
	for _, f := range q.Filters {
		s, ok := slots[f.Var]
		if !ok {
			return nil, fmt.Errorf("exec: filter variable ?%s does not occur in the query", f.Var)
		}
		filters = append(filters, slotFilter{slot: s, f: f})
	}

	rs := &ResultSet{Vars: dist}
	binding := make([]store.ID, len(slots))
	bound := make([]bool, len(slots))
	seen := map[string]bool{}
	order := e.planOrder(pats)
	budget := e.MaxSteps
	if budget <= 0 {
		budget = DefaultMaxSteps
	}
	ctxCountdown := ctxCheckInterval
	var ctxErr error

	var walk func(step int) bool // returns false to stop early
	walk = func(step int) bool {
		if step == len(order) {
			// Apply filters: the bound term must be a literal whose
			// numeric value satisfies the comparison.
			for _, sf := range filters {
				t := e.st.Term(binding[sf.slot])
				if !t.IsLiteral() || !sf.f.Eval(t.Value) {
					return true // row rejected; keep searching
				}
			}
			// Project and deduplicate.
			key := make([]byte, 0, 4*len(projSlots))
			for _, s := range projSlots {
				id := binding[s]
				key = append(key, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
			}
			k := string(key)
			if seen[k] {
				return true
			}
			seen[k] = true
			row := make([]rdf.Term, len(projSlots))
			for i, s := range projSlots {
				row[i] = e.st.Term(binding[s])
			}
			rs.Rows = append(rs.Rows, row)
			if limit > 0 && len(rs.Rows) >= limit {
				rs.Truncated = true
				return false
			}
			return true
		}
		p := pats[order[step]]
		sp, op := p.s, p.o
		if p.sv >= 0 && bound[p.sv] {
			sp = binding[p.sv]
		}
		if p.ov >= 0 && bound[p.ov] {
			op = binding[p.ov]
		}
		it := e.st.Match(sp, p.p, op)
		for it.Next() {
			budget--
			if budget < 0 {
				rs.Truncated = true
				return false
			}
			ctxCountdown--
			if ctxCountdown <= 0 {
				ctxCountdown = ctxCheckInterval
				if ctxErr = ctx.Err(); ctxErr != nil {
					return false
				}
			}
			t := it.Triple()
			var newS, newO bool
			if p.sv >= 0 && !bound[p.sv] {
				binding[p.sv] = t.S
				bound[p.sv] = true
				newS = true
			}
			if p.ov >= 0 && !bound[p.ov] {
				// Repeated variable within the atom (p(x,x)): the object
				// must equal the just-bound subject.
				if p.ov == p.sv {
					if t.O != binding[p.sv] {
						if newS {
							bound[p.sv] = false
						}
						continue
					}
				} else {
					binding[p.ov] = t.O
					bound[p.ov] = true
					newO = true
				}
			}
			cont := walk(step + 1)
			if newS {
				bound[p.sv] = false
			}
			if newO {
				bound[p.ov] = false
			}
			if !cont {
				return false
			}
		}
		return true
	}
	walk(0)
	if ctxErr != nil {
		return nil, ctxErr
	}
	return rs, nil
}

func emptyResult(q *query.ConjunctiveQuery) *ResultSet {
	dist := q.Distinguished
	if len(dist) == 0 {
		dist = q.Vars()
	}
	return &ResultSet{Vars: dist}
}

// metasOf projects compiled patterns onto the shared planner's shape;
// counts are exact constant-prefix match counts from the store.
func (e *Engine) metasOf(pats []pattern) []PatternMeta {
	metas := make([]PatternMeta, len(pats))
	for i, p := range pats {
		metas[i] = PatternMeta{SV: p.sv, OV: p.ov, Count: e.st.Count(p.s, p.p, p.o)}
	}
	return metas
}

// planOrder orders patterns with the shared greedy planner.
func (e *Engine) planOrder(pats []pattern) []int {
	return GreedyOrder(e.metasOf(pats))
}

// SortRows orders the rows lexicographically (by term comparison), useful
// for deterministic output in tools and tests.
func (r *ResultSet) SortRows() {
	sort.Slice(r.Rows, func(i, j int) bool {
		for k := range r.Rows[i] {
			if c := r.Rows[i][k].Compare(r.Rows[j][k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}
