// Package exec is the repository's "underlying database engine" (the role
// Semplore plays in the paper's evaluation, Sec. VII-B): it evaluates
// conjunctive queries — basic graph patterns — against the triple store
// and returns the answers of Definition 3.
//
// Evaluation is index-nested-loop join over the store's SPO/POS/OSP
// orderings with a greedy, selectivity-based join order: at every step the
// most-bound pattern (fewest unbound positions, smallest exact match count
// for its bound prefix) is evaluated next. Answers are the distinct
// projections onto the distinguished variables.
//
// The join core is iterative and pooled: each step drives a range cursor
// over a zero-allocation store.View (contiguous component columns, no
// permutation indirection), backtracking walks an explicit cursor stack
// rather than the call stack, answers deduplicate through an ID-keyed
// open-addressing set (IDSet — no string keys), and rows materialize to
// rdf.Terms lazily, only after surviving filters and dedup. All scratch
// state recycles through a sync.Pool, so a warm engine's execute path
// allocates only the rows it returns. The pre-rewrite recursive
// implementation is preserved in reference.go and pins this one's output
// bit-for-bit in the golden tests.
package exec

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/trace"
)

// Engine evaluates conjunctive queries against one store. It is stateless
// apart from the store reference and pooled scratch memory, and safe for
// concurrent use once the store is built.
type Engine struct {
	st *store.Store
	// MaxSteps bounds the number of join iterations per query as a
	// defense against degenerate plans (e.g. empty cartesian products
	// from variable-disconnected queries); 0 applies DefaultMaxSteps.
	// When the budget is exhausted the result is marked Truncated.
	MaxSteps int
	// MaxRows bounds distinct-answer tracking when the caller sets no
	// limit (or a larger one): the dedup set and the materialized rows
	// both stop growing there, the result is marked Truncated, and
	// Stats.TruncatedBy says why. 0 applies DefaultMaxRows. It exists so
	// a degenerate unlimited query cannot grow memory without bound.
	MaxRows int

	pool sync.Pool // *execState
}

// DefaultMaxSteps is the per-query join-iteration budget.
const DefaultMaxSteps = 20_000_000

// DefaultMaxRows is the per-query distinct-answer cap when no limit is
// given — generous (an interactive caller asks for far less; see
// internal/server's MaxLimit) but finite.
const DefaultMaxRows = 1_000_000

// New returns an engine over st.
func New(st *store.Store) *Engine { return &Engine{st: st} }

// TruncReason says which bound cut an evaluation short.
type TruncReason string

const (
	// TruncNone: the answer set is complete.
	TruncNone TruncReason = ""
	// TruncLimit: the caller's row limit was reached.
	TruncLimit TruncReason = "limit"
	// TruncMaxRows: the engine's MaxRows distinct-answer cap was reached.
	TruncMaxRows TruncReason = "max_rows"
	// TruncBudget: the MaxSteps join-iteration budget ran out.
	TruncBudget TruncReason = "step_budget"
)

// ExecStats reports how an evaluation went: the join work spent, the
// fully joined bindings that reached projection, how many of those were
// duplicate answers, and why evaluation stopped early (if it did). The
// serving layer surfaces these per response and as counters.
type ExecStats struct {
	// JoinIterations is the number of triples the join cursors yielded
	// across all steps (the MaxSteps budget counts these).
	JoinIterations int64
	// RowsExamined counts fully joined bindings reaching the
	// filter/projection tail.
	RowsExamined int64
	// RowsDeduped counts examined rows rejected as duplicate answers.
	RowsDeduped int64
	// TruncatedBy is the bound that stopped evaluation (empty: none).
	TruncatedBy TruncReason
	// Coverage describes how much of a sharded cluster answered this
	// query (nil for single-engine evaluations, which always see all the
	// data). See Coverage.
	Coverage *Coverage
}

// Coverage is the degraded-serving marker of the sharded cluster: how
// many shard groups a scatter-gather query reached, and what the fault
// layer did to get there. It rides exec.ResultSet.Stats for executes and
// engine.SearchInfo for searches, surfaces in the /v1 JSON (and the
// NDJSON trailer), and feeds the searchwebdb_hedges_total /
// searchwebdb_degraded_responses_total metrics. A query is degraded
// (partial results) when ShardsFailed > 0; whether that is served as a
// partial 200 or a 503 is the serving layer's -require-full-coverage
// policy, not the cluster's.
//
// It lives in package exec — the leaf both engine and shard already
// import — so the coordinator can thread one struct through both result
// paths without an import cycle.
type Coverage struct {
	// ShardsTotal is the number of shard groups in the cluster.
	ShardsTotal int
	// ShardsAnswered is how many groups contributed fully to the query.
	ShardsAnswered int
	// ShardsFailed is how many groups were down (replicas exhausted or
	// breaker open); their contributions are missing from the results.
	ShardsFailed int
	// Retries counts replica attempts after a same-group failure.
	Retries int
	// HedgesFired counts hedged (duplicate, latency-racing) attempts.
	HedgesFired int
	// HedgeWins counts calls a hedged attempt answered first.
	HedgeWins int
	// BreakerOpen counts calls short-circuited by an open breaker
	// without touching a replica.
	BreakerOpen int
	// Panics counts replica attempts that panicked and were converted
	// to failures by the transport layer.
	Panics int
}

// Degraded reports whether results are partial: at least one shard group
// contributed nothing.
func (c *Coverage) Degraded() bool { return c != nil && c.ShardsFailed > 0 }

// ResultSet holds the answers to a conjunctive query.
type ResultSet struct {
	// Vars are the distinguished variables, in query order.
	Vars []string
	// Rows holds one term per variable per answer, deduplicated.
	Rows [][]rdf.Term
	// Truncated is true when evaluation stopped at a row limit.
	Truncated bool
	// Stats holds the evaluation work counters (zero for results from
	// the preserved reference implementation).
	Stats ExecStats
}

// Len returns the number of answers.
func (r *ResultSet) Len() int { return len(r.Rows) }

// String renders a compact table of the answers.
func (r *ResultSet) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", strings.Join(r.Vars, "\t"))
	for _, row := range r.Rows {
		for i, t := range row {
			if i > 0 {
				b.WriteByte('\t')
			}
			if t.IsLiteral() {
				b.WriteString(t.Value)
			} else {
				b.WriteString(t.LocalName())
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// pattern is a compiled query atom: constants resolved to dictionary IDs,
// variables to dense variable slots.
type pattern struct {
	s, p, o  store.ID // 0 (Wildcard) when the position is a variable
	sv, ov   int      // variable slot, -1 when constant
	numConst int
}

// stepSpec is one join step fully resolved against the plan: because the
// join order is fixed before execution, whether each variable position is
// already bound when the step runs is static, so the inner loop carries
// no dynamic bound-flag bookkeeping at all.
type stepSpec struct {
	p      store.ID // predicate (always constant)
	s, o   store.ID // constant subject/object (0 when variable)
	sv, ov int      // variable slots (-1 when constant)
	sBound bool     // subject is a variable bound by an earlier step
	oBound bool     // object is a variable bound by an earlier step
	bindS  bool     // this step binds the subject variable
	bindO  bool     // this step binds the object variable
	// sameVar marks p(x,x) with x unbound at entry: rows must have
	// S == O, and the one variable binds once.
	sameVar bool
}

// cursor is one step's position in its range view. When a delta overlay
// is present, dview holds the delta rows for the same pattern and the
// advance loop two-way-merges both views by the ordering's comparator,
// reproducing exactly the row order a merged store would yield. With no
// delta, dview is empty and the merge degenerates to the base view with
// one predictable branch per row.
type cursor struct {
	view  store.View
	pos   int
	dview store.View
	dpos  int
	// cmpSO selects the merge comparator: true compares (S,O) — the SPO
	// ordering with the step's constant predicate equal on both sides —
	// false compares (O,S), which covers both POS and OSP.
	cmpSO bool
}

// slotFilter is a query filter compiled to a variable slot.
type slotFilter struct {
	slot int
	f    query.Filter
}

// execState is the pooled scratch memory of one evaluation: compiled
// patterns, plan, step specs, the binding array, the cursor stack, the
// dedup set, and the projection key buffer. Everything is grown once and
// recycled, so a warm engine's steady-state execute path allocates only
// the surviving answer rows.
type execState struct {
	pats    []pattern
	slots   map[string]int
	metas   []PatternMeta
	specs   []stepSpec
	binding []store.ID
	bound   []bool
	cursors []cursor
	proj    []int
	filters []slotFilter
	key     []store.ID
	seen    IDSet

	// delta is the per-call read overlay (nil in the common sealed-engine
	// case). It is cleared before the state returns to the pool so the
	// pool never pins a superseded snapshot.
	delta *store.DeltaSnap
}

func (e *Engine) getState() *execState {
	if v := e.pool.Get(); v != nil {
		return v.(*execState)
	}
	return &execState{slots: make(map[string]int)}
}

func (e *Engine) putState(st *execState) {
	st.delta = nil
	e.pool.Put(st)
}

// lookupTerm resolves a constant against the base dictionary, falling
// back to the delta's extension dictionary when an overlay is present.
func (e *Engine) lookupTerm(stt *execState, t rdf.Term) (store.ID, bool) {
	if id, ok := e.st.Lookup(t); ok {
		return id, ok
	}
	if stt.delta != nil {
		return stt.delta.Lookup(t)
	}
	return 0, false
}

// termOf resolves an ID to its term: extension IDs through the delta,
// everything else through the base dictionary.
func (e *Engine) termOf(stt *execState, id store.ID) rdf.Term {
	if stt.delta != nil {
		if t, ok := stt.delta.ExtTerm(id); ok {
			return t
		}
	}
	return e.st.Term(id)
}

// Execute evaluates q and returns all answers.
func (e *Engine) Execute(q *query.ConjunctiveQuery) (*ResultSet, error) {
	return e.ExecuteLimit(q, 0)
}

// ExecuteContext evaluates q under a context; see ExecuteLimitContext.
func (e *Engine) ExecuteContext(ctx context.Context, q *query.ConjunctiveQuery) (*ResultSet, error) {
	return e.ExecuteLimitContext(ctx, q, 0)
}

// compile resolves a query's atoms to dictionary-encoded patterns and
// variable slots. empty reports that some constant is absent from the
// dictionary, making the query trivially unsatisfiable. The patterns land
// in stt.pats and the slot map in stt.slots, both reused across calls.
func (e *Engine) compileInto(stt *execState, q *query.ConjunctiveQuery) (empty bool, err error) {
	if len(q.Atoms) == 0 {
		return false, fmt.Errorf("exec: query has no atoms")
	}
	clear(stt.slots)
	slotOf := func(a query.Arg) int {
		if !a.IsVar() {
			return -1
		}
		s, ok := stt.slots[a.Var]
		if !ok {
			s = len(stt.slots)
			stt.slots[a.Var] = s
		}
		return s
	}
	stt.pats = stt.pats[:0]
	for _, at := range q.Atoms {
		p := pattern{sv: slotOf(at.S), ov: slotOf(at.O)}
		pid, ok := e.lookupTerm(stt, at.Pred)
		if !ok {
			return true, nil // predicate absent from the data
		}
		p.p = pid
		p.numConst = 1
		if p.sv < 0 {
			sid, ok := e.lookupTerm(stt, at.S.Term)
			if !ok {
				return true, nil
			}
			p.s = sid
			p.numConst++
		}
		if p.ov < 0 {
			oid, ok := e.lookupTerm(stt, at.O.Term)
			if !ok {
				return true, nil
			}
			p.o = oid
			p.numConst++
		}
		stt.pats = append(stt.pats, p)
	}
	return false, nil
}

// compile is the allocating convenience wrapper around compileInto used
// by Explain and the preserved reference implementation.
func (e *Engine) compile(q *query.ConjunctiveQuery) (pats []pattern, slots map[string]int, empty bool, err error) {
	stt := &execState{slots: map[string]int{}}
	empty, err = e.compileInto(stt, q)
	return stt.pats, stt.slots, empty, err
}

// ExecuteLimit evaluates q, stopping once limit distinct answers exist
// (limit ≤ 0 means no limit). This is the "process queries until at least
// 10 answers are found" operation of the Fig. 5 experiment.
func (e *Engine) ExecuteLimit(q *query.ConjunctiveQuery, limit int) (*ResultSet, error) {
	return e.ExecuteLimitContext(context.Background(), q, limit)
}

// ctxCheckInterval is how many join iterations go by between context
// polls inside the join loop.
const ctxCheckInterval = 8192

// ExecuteLimitContext is ExecuteLimit under a context: the join loop
// polls ctx every ctxCheckInterval iterations and returns ctx.Err() when
// the context is cancelled or its deadline passes, so a slow query stops
// burning CPU promptly instead of running to completion.
func (e *Engine) ExecuteLimitContext(ctx context.Context, q *query.ConjunctiveQuery, limit int) (*ResultSet, error) {
	return e.ExecuteLimitContextDelta(ctx, q, limit, nil)
}

// deltaRowFirst decides, during a two-view merge, whether the delta row
// precedes the base row in the step's ordering. cmpSO compares (S,O)
// (the SPO ordering with the predicate constant); otherwise (O,S)
// covers both POS and OSP.
func deltaRowFirst(cmpSO bool, bs, bo, ds, do store.ID) bool {
	if cmpSO {
		return ds < bs || (ds == bs && do < bo)
	}
	return do < bo || (do == bo && ds < bs)
}

// ExecuteLimitContextDelta is ExecuteLimitContext with a live-ingestion
// read overlay: the evaluation sees base ∪ delta as one triple set, row
// streams merged per ordering, and answers are bit-identical to
// evaluating against store.MergeDelta(base, delta). A nil or empty
// delta adds no heap allocations to the sealed-engine path.
func (e *Engine) ExecuteLimitContextDelta(ctx context.Context, q *query.ConjunctiveQuery, limit int, delta *store.DeltaSnap) (*ResultSet, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	stt := e.getState()
	defer e.putState(stt)
	if delta != nil && !delta.Empty() {
		stt.delta = delta
	}

	_, planSpan := trace.StartSpan(ctx, "plan")
	empty, err := e.compileInto(stt, q)
	if err != nil {
		planSpan.End()
		return nil, err
	}
	if empty {
		planSpan.End()
		return emptyResult(q), nil
	}

	dist := q.Distinguished
	if len(dist) == 0 {
		dist = q.Vars()
	}
	stt.proj = stt.proj[:0]
	for _, v := range dist {
		s, ok := stt.slots[v]
		if !ok {
			planSpan.End()
			return nil, fmt.Errorf("exec: distinguished variable ?%s does not occur in the query", v)
		}
		stt.proj = append(stt.proj, s)
	}

	stt.filters = stt.filters[:0]
	for _, f := range q.Filters {
		s, ok := stt.slots[f.Var]
		if !ok {
			planSpan.End()
			return nil, fmt.Errorf("exec: filter variable ?%s does not occur in the query", f.Var)
		}
		stt.filters = append(stt.filters, slotFilter{slot: s, f: f})
	}

	order := e.planOrderInto(stt)
	stt.compileSteps(order)
	planSpan.End()

	maxRows := e.MaxRows
	if maxRows <= 0 {
		maxRows = DefaultMaxRows
	}
	rs := &ResultSet{Vars: dist}
	jctx, joinSpan := trace.StartSpan(ctx, "join")
	err = e.run(jctx, stt, rs, limit, maxRows)
	joinSpan.End()
	if err != nil {
		return nil, err
	}
	return rs, nil
}

// compileSteps resolves the ordered patterns into static step specs: with
// the plan fixed, which positions are bound at each step is known before
// the first row is read.
func (stt *execState) compileSteps(order []int) {
	stt.specs = stt.specs[:0]
	stt.binding = grow(stt.binding, len(stt.slots))
	stt.bound = growBool(stt.bound, len(stt.slots))
	for i := range stt.bound {
		stt.bound[i] = false
	}
	for _, idx := range order {
		p := stt.pats[idx]
		sp := stepSpec{p: p.p, s: p.s, o: p.o, sv: p.sv, ov: p.ov}
		sp.sBound = p.sv >= 0 && stt.bound[p.sv]
		sp.oBound = p.ov >= 0 && stt.bound[p.ov]
		sp.sameVar = p.sv >= 0 && p.ov == p.sv && !sp.sBound
		sp.bindS = p.sv >= 0 && !sp.sBound && !sp.sameVar
		sp.bindO = p.ov >= 0 && !sp.oBound && p.ov != p.sv
		if p.sv >= 0 {
			stt.bound[p.sv] = true
		}
		if p.ov >= 0 {
			stt.bound[p.ov] = true
		}
		stt.specs = append(stt.specs, sp)
	}
	if cap(stt.cursors) < len(stt.specs) {
		stt.cursors = make([]cursor, len(stt.specs))
	}
	stt.cursors = stt.cursors[:len(stt.specs)]
}

// openCursor positions step depth's cursor at the start of its range,
// with bound variables substituted from the current binding. With a
// delta overlay, the delta's matching rows open alongside in the same
// ordering; Store.Range tolerates extension IDs (they resolve past its
// offset tables to the empty range), so a binding produced by a delta
// row narrows the base view to nothing and the overlay serves it alone.
func (e *Engine) openCursor(stt *execState, depth int) {
	sp := &stt.specs[depth]
	s, o := sp.s, sp.o
	if sp.sBound {
		s = stt.binding[sp.sv]
	}
	if sp.oBound {
		o = stt.binding[sp.ov]
	}
	cur := &stt.cursors[depth]
	*cur = cursor{view: e.st.Range(s, sp.p, o)}
	if stt.delta != nil {
		cur.dview = stt.delta.Range(s, sp.p, o)
		// The comparator mirrors Range's ordering selection: S bound (and
		// not the S+O-no-P case) → SPO, i.e. compare (S,O); every other
		// shape sorts by (O,S) — POS compares O then S with P constant,
		// OSP compares O then S directly.
		cur.cmpSO = s != store.Wildcard && !(o != store.Wildcard && sp.p == store.Wildcard)
	}
}

// run is the iterative join machine: an explicit cursor stack replaces
// the recursive walk, each frame advancing its zero-allocation range view
// and descending on a successful binding. Answers are deduplicated in ID
// space and materialized to terms only when new.
func (e *Engine) run(ctx context.Context, stt *execState, rs *ResultSet, limit, maxRows int) error {
	budget := int64(e.MaxSteps)
	if e.MaxSteps <= 0 {
		budget = DefaultMaxSteps
	}
	ctxCountdown := ctxCheckInterval

	stt.seen.Reset(len(stt.proj))
	binding := stt.binding
	last := len(stt.specs) - 1
	depth := 0
	e.openCursor(stt, 0)

	for depth >= 0 {
		cur := &stt.cursors[depth]
		sp := &stt.specs[depth]
		// Advance to the next row of this step that extends the binding.
		// The row stream is the base view with the delta view merged in by
		// the ordering's comparator; an empty delta view reduces this to
		// the plain base iteration.
		advanced := false
		for cur.pos < len(cur.view.S) || cur.dpos < len(cur.dview.S) {
			var rowS, rowO store.ID
			switch {
			case cur.dpos >= len(cur.dview.S):
				rowS, rowO = cur.view.S[cur.pos], cur.view.O[cur.pos]
				cur.pos++
			case cur.pos >= len(cur.view.S):
				rowS, rowO = cur.dview.S[cur.dpos], cur.dview.O[cur.dpos]
				cur.dpos++
			default:
				bs, bo := cur.view.S[cur.pos], cur.view.O[cur.pos]
				ds, do := cur.dview.S[cur.dpos], cur.dview.O[cur.dpos]
				if deltaRowFirst(cur.cmpSO, bs, bo, ds, do) {
					rowS, rowO = ds, do
					cur.dpos++
				} else {
					rowS, rowO = bs, bo
					cur.pos++
				}
			}
			rs.Stats.JoinIterations++
			budget--
			if budget < 0 {
				rs.Truncated = true
				rs.Stats.TruncatedBy = TruncBudget
				return nil
			}
			ctxCountdown--
			if ctxCountdown <= 0 {
				ctxCountdown = ctxCheckInterval
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if sp.sameVar {
				if rowS != rowO {
					continue
				}
				binding[sp.sv] = rowS
			} else {
				if sp.bindS {
					binding[sp.sv] = rowS
				}
				if sp.bindO {
					binding[sp.ov] = rowO
				}
			}
			advanced = true
			break
		}
		if !advanced {
			depth--
			continue
		}
		if depth < last {
			depth++
			e.openCursor(stt, depth)
			continue
		}

		// A fully joined binding: filter, deduplicate in ID space,
		// materialize only if new.
		rs.Stats.RowsExamined++
		ok := true
		for _, sf := range stt.filters {
			t := e.termOf(stt, binding[sf.slot])
			if !t.IsLiteral() || !sf.f.Eval(t.Value) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		stt.key = stt.key[:0]
		for _, s := range stt.proj {
			stt.key = append(stt.key, binding[s])
		}
		if !stt.seen.Insert(stt.key) {
			rs.Stats.RowsDeduped++
			continue
		}
		row := make([]rdf.Term, len(stt.proj))
		for i, s := range stt.proj {
			row[i] = e.termOf(stt, binding[s])
		}
		rs.Rows = append(rs.Rows, row)
		if limit > 0 && len(rs.Rows) >= limit {
			rs.Truncated = true
			rs.Stats.TruncatedBy = TruncLimit
			return nil
		}
		if len(rs.Rows) >= maxRows {
			rs.Truncated = true
			rs.Stats.TruncatedBy = TruncMaxRows
			return nil
		}
	}
	return nil
}

func grow(s []store.ID, n int) []store.ID {
	if cap(s) < n {
		return make([]store.ID, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func emptyResult(q *query.ConjunctiveQuery) *ResultSet {
	dist := q.Distinguished
	if len(dist) == 0 {
		dist = q.Vars()
	}
	return &ResultSet{Vars: dist}
}

// metasOf projects compiled patterns onto the shared planner's shape;
// counts are exact constant-prefix match counts from the store.
func (e *Engine) metasOf(pats []pattern) []PatternMeta {
	metas := make([]PatternMeta, len(pats))
	for i, p := range pats {
		metas[i] = PatternMeta{SV: p.sv, OV: p.ov, Count: e.st.Count(p.s, p.p, p.o)}
	}
	return metas
}

// planOrder orders patterns with the shared greedy planner.
func (e *Engine) planOrder(pats []pattern) []int {
	return GreedyOrder(e.metasOf(pats))
}

// planOrderInto is planOrder with the metas buffer pooled in stt. The
// order itself comes from the same shared GreedyOrder the cluster
// coordinator plans with.
func (e *Engine) planOrderInto(stt *execState) []int {
	stt.metas = stt.metas[:0]
	for _, p := range stt.pats {
		n := e.st.Count(p.s, p.p, p.o)
		if stt.delta != nil {
			n += stt.delta.Count(p.s, p.p, p.o)
		}
		stt.metas = append(stt.metas, PatternMeta{SV: p.sv, OV: p.ov, Count: n})
	}
	return GreedyOrder(stt.metas)
}

// SortRows orders the rows lexicographically (by term comparison), useful
// for deterministic output in tools and tests.
func (r *ResultSet) SortRows() {
	sort.Slice(r.Rows, func(i, j int) bool {
		for k := range r.Rows[i] {
			if c := r.Rows[i][k].Compare(r.Rows[j][k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}
