package exec

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/store"
)

// lubmEnv builds a compact LUBM(1) store once for the integration suite.
func lubmEnv(t *testing.T) (*Engine, *store.Store) {
	t.Helper()
	st := store.New()
	st.AddAll(datagen.LUBMTriples(datagen.LUBMConfig{Universities: 1, Seed: 5, Compact: true}))
	return New(st), st
}

func lubm(name string) rdf.Term { return rdf.NewIRI(datagen.LUBMNS + name) }

func typePat(v, class string) query.Atom {
	return query.Atom{Pred: rdf.NewIRI(rdf.RDFType), S: query.Variable(v), O: query.Constant(lubm(class))}
}

func rel(s, pred, o string) query.Atom {
	return query.Atom{Pred: lubm(pred), S: query.Variable(s), O: query.Variable(o)}
}

// TestLUBMStandardQueries runs conjunctive adaptations of the univ-bench
// query mix (the joins LUBM is famous for) against the execution engine,
// validating join correctness on schema-rich data. Without RDFS inference
// the class atoms use the leaf types the generator materializes.
func TestLUBMStandardQueries(t *testing.T) {
	e, st := lubmEnv(t)

	run := func(name string, q *query.ConjunctiveQuery, wantSome bool) *ResultSet {
		t.Helper()
		rs, err := e.Execute(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if wantSome && rs.Len() == 0 {
			t.Fatalf("%s: no answers", name)
		}
		return rs
	}

	// L1 (LUBM Q1-style): graduate students and the graduate courses they take.
	l1 := &query.ConjunctiveQuery{
		Atoms: []query.Atom{
			typePat("x", "GraduateStudent"),
			rel("x", "takesCourse", "y"),
			typePat("y", "GraduateCourse"),
		},
		Distinguished: []string{"x", "y"},
	}
	run("L1", l1, true)

	// L2 (LUBM Q2-style): the classic triangle — graduate students who are
	// members of a department of the university they got their undergraduate
	// degree from.
	l2 := &query.ConjunctiveQuery{
		Atoms: []query.Atom{
			typePat("x", "GraduateStudent"),
			typePat("y", "University"),
			typePat("z", "Department"),
			rel("x", "memberOf", "z"),
			rel("z", "subOrganizationOf", "y"),
			rel("x", "undergraduateDegreeFrom", "y"),
		},
		Distinguished: []string{"x", "y", "z"},
	}
	rs2 := run("L2", l2, true)
	// Verify the triangle holds on every row by direct store probes.
	memberOf, _ := st.Lookup(lubm("memberOf"))
	subOrg, _ := st.Lookup(lubm("subOrganizationOf"))
	degree, _ := st.Lookup(lubm("undergraduateDegreeFrom"))
	for _, row := range rs2.Rows {
		x, _ := st.Lookup(row[0])
		y, _ := st.Lookup(row[1])
		z, _ := st.Lookup(row[2])
		if st.Count(x, memberOf, z) != 1 || st.Count(z, subOrg, y) != 1 || st.Count(x, degree, y) != 1 {
			t.Fatalf("L2: triangle violated for row %v", row)
		}
	}

	// L4 (LUBM Q4-style): professors working for a department, with name
	// and email.
	l4 := &query.ConjunctiveQuery{
		Atoms: []query.Atom{
			typePat("x", "FullProfessor"),
			rel("x", "worksFor", "d"),
			typePat("d", "Department"),
			{Pred: lubm("name"), S: query.Variable("x"), O: query.Variable("n")},
			{Pred: lubm("emailAddress"), S: query.Variable("x"), O: query.Variable("e")},
		},
		Distinguished: []string{"x", "n", "e"},
	}
	run("L4", l4, true)

	// L7 (LUBM Q7-style): students taking courses taught by full professors.
	l7 := &query.ConjunctiveQuery{
		Atoms: []query.Atom{
			typePat("s", "UndergraduateStudent"),
			rel("s", "takesCourse", "c"),
			rel("p", "teacherOf", "c"),
			typePat("p", "FullProfessor"),
		},
		Distinguished: []string{"s", "c", "p"},
	}
	run("L7", l7, true)

	// L9 (LUBM Q9-style): the advisor triangle — students whose advisor
	// teaches a course they take. Sparse but must evaluate correctly;
	// verify any produced rows.
	l9 := &query.ConjunctiveQuery{
		Atoms: []query.Atom{
			typePat("s", "GraduateStudent"),
			rel("s", "advisor", "p"),
			rel("s", "takesCourse", "c"),
			rel("p", "teacherOf", "c"),
		},
		Distinguished: []string{"s", "p", "c"},
	}
	rs9 := run("L9", l9, false)
	advisor, _ := st.Lookup(lubm("advisor"))
	teacherOf, _ := st.Lookup(lubm("teacherOf"))
	takes, _ := st.Lookup(lubm("takesCourse"))
	for _, row := range rs9.Rows {
		s, _ := st.Lookup(row[0])
		p, _ := st.Lookup(row[1])
		c, _ := st.Lookup(row[2])
		if st.Count(s, advisor, p) != 1 || st.Count(p, teacherOf, c) != 1 || st.Count(s, takes, c) != 1 {
			t.Fatalf("L9: triangle violated for row %v", row)
		}
	}

	// L10: research groups of a department's university (two-hop
	// subOrganizationOf chain).
	l10 := &query.ConjunctiveQuery{
		Atoms: []query.Atom{
			typePat("g", "ResearchGroup"),
			rel("g", "subOrganizationOf", "d"),
			typePat("d", "Department"),
			rel("d", "subOrganizationOf", "u"),
			typePat("u", "University"),
		},
		Distinguished: []string{"g", "u"},
	}
	run("L10", l10, true)

	// L11: head of department must also work for it.
	l11 := &query.ConjunctiveQuery{
		Atoms: []query.Atom{
			typePat("p", "FullProfessor"),
			rel("p", "headOf", "d"),
			rel("p", "worksFor", "d"),
		},
		Distinguished: []string{"p", "d"},
	}
	rs11 := run("L11", l11, true)
	// Every department has exactly one head in the generator.
	deptCount := 0
	typ, _ := st.Lookup(rdf.NewIRI(rdf.RDFType))
	deptClass, _ := st.Lookup(lubm("Department"))
	it := st.Match(store.Wildcard, typ, deptClass)
	for it.Next() {
		deptCount++
	}
	if rs11.Len() != deptCount {
		t.Fatalf("L11: %d heads, want one per department (%d)", rs11.Len(), deptCount)
	}
}

// TestLUBMQueryWithLimitAndProjection exercises limit + projection on the
// richest join of the suite.
func TestLUBMQueryWithLimitAndProjection(t *testing.T) {
	e, _ := lubmEnv(t)
	q := &query.ConjunctiveQuery{
		Atoms: []query.Atom{
			typePat("s", "UndergraduateStudent"),
			rel("s", "takesCourse", "c"),
			rel("p", "teacherOf", "c"),
		},
		Distinguished: []string{"p"},
	}
	rs, err := e.ExecuteLimit(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 5 || !rs.Truncated {
		t.Fatalf("limit: %d rows, truncated=%v", rs.Len(), rs.Truncated)
	}
	// Distinct projection: no professor may repeat.
	seen := map[rdf.Term]bool{}
	for _, row := range rs.Rows {
		if seen[row[0]] {
			t.Fatal("projection not deduplicated")
		}
		seen[row[0]] = true
	}
}
