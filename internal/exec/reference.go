package exec

// The preserved reference implementation of conjunctive-query evaluation:
// the recursive, closure-based nested-loop join exec shipped with before
// the iterative pooled join core replaced it. It is kept (a) as the
// golden-equivalence oracle — the golden tests pin the optimized
// executor's rows bit-for-bit against this code on the DBLP and LUBM
// workloads — and (b) as the "before" row of cmd/benchmark exec, so
// BENCH_exec.json records what the rewrite bought on the same binary.
//
// Do not optimize this file. Its value is that it does not change.
//
// One deliberate deviation from the code it preserves: the shipped
// walk's repeated-variable check for p(x,x) atoms was dead code — the
// subject branch marked the slot bound before the object branch tested
// it, so such patterns silently ignored the object component, diverging
// from the distributed executor (internal/shard), which enforces S == O.
// The reference enforces S == O (Definition 3 semantics), so one oracle
// serves both executors.

import (
	"context"
	"fmt"

	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/store"
)

// ReferenceExecuteLimit evaluates q with the preserved reference
// implementation; see ReferenceExecuteLimitContext.
func (e *Engine) ReferenceExecuteLimit(q *query.ConjunctiveQuery, limit int) (*ResultSet, error) {
	return e.ReferenceExecuteLimitContext(context.Background(), q, limit)
}

// ReferenceExecuteLimitContext is the pre-rewrite ExecuteLimitContext,
// verbatim: a recursive nested-loop join over store iterators with a
// string-keyed dedup map and eager row materialization. Same plan (the
// shared greedy planner), same join-iteration budget, same context
// polling cadence — only the machinery differs. Its ResultSet carries no
// execution Stats.
func (e *Engine) ReferenceExecuteLimitContext(ctx context.Context, q *query.ConjunctiveQuery, limit int) (*ResultSet, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pats, slots, empty, err := e.compile(q)
	if err != nil {
		return nil, err
	}
	if empty {
		return emptyResult(q), nil
	}

	dist := q.Distinguished
	if len(dist) == 0 {
		dist = q.Vars()
	}
	projSlots := make([]int, 0, len(dist))
	for _, v := range dist {
		s, ok := slots[v]
		if !ok {
			return nil, fmt.Errorf("exec: distinguished variable ?%s does not occur in the query", v)
		}
		projSlots = append(projSlots, s)
	}

	type slotFilter struct {
		slot int
		f    query.Filter
	}
	var filters []slotFilter
	for _, f := range q.Filters {
		s, ok := slots[f.Var]
		if !ok {
			return nil, fmt.Errorf("exec: filter variable ?%s does not occur in the query", f.Var)
		}
		filters = append(filters, slotFilter{slot: s, f: f})
	}

	rs := &ResultSet{Vars: dist}
	binding := make([]store.ID, len(slots))
	bound := make([]bool, len(slots))
	seen := map[string]bool{}
	order := e.planOrder(pats)
	budget := e.MaxSteps
	if budget <= 0 {
		budget = DefaultMaxSteps
	}
	ctxCountdown := ctxCheckInterval
	var ctxErr error

	var walk func(step int) bool // returns false to stop early
	walk = func(step int) bool {
		if step == len(order) {
			// Apply filters: the bound term must be a literal whose
			// numeric value satisfies the comparison.
			for _, sf := range filters {
				t := e.st.Term(binding[sf.slot])
				if !t.IsLiteral() || !sf.f.Eval(t.Value) {
					return true // row rejected; keep searching
				}
			}
			// Project and deduplicate.
			key := make([]byte, 0, 4*len(projSlots))
			for _, s := range projSlots {
				id := binding[s]
				key = append(key, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
			}
			k := string(key)
			if seen[k] {
				return true
			}
			seen[k] = true
			row := make([]rdf.Term, len(projSlots))
			for i, s := range projSlots {
				row[i] = e.st.Term(binding[s])
			}
			rs.Rows = append(rs.Rows, row)
			if limit > 0 && len(rs.Rows) >= limit {
				rs.Truncated = true
				return false
			}
			return true
		}
		p := pats[order[step]]
		sp, op := p.s, p.o
		if p.sv >= 0 && bound[p.sv] {
			sp = binding[p.sv]
		}
		if p.ov >= 0 && bound[p.ov] {
			op = binding[p.ov]
		}
		it := e.st.Match(sp, p.p, op)
		for it.Next() {
			budget--
			if budget < 0 {
				rs.Truncated = true
				return false
			}
			ctxCountdown--
			if ctxCountdown <= 0 {
				ctxCountdown = ctxCheckInterval
				if ctxErr = ctx.Err(); ctxErr != nil {
					return false
				}
			}
			t := it.Triple()
			var newS, newO bool
			if p.sv >= 0 && !bound[p.sv] {
				binding[p.sv] = t.S
				bound[p.sv] = true
				newS = true
			}
			// Repeated variable within the atom (p(x,x)) newly bound from
			// the subject: the object must equal it.
			if p.ov >= 0 && p.ov == p.sv && newS {
				if t.O != binding[p.sv] {
					bound[p.sv] = false
					continue
				}
			} else if p.ov >= 0 && !bound[p.ov] {
				binding[p.ov] = t.O
				bound[p.ov] = true
				newO = true
			}
			cont := walk(step + 1)
			if newS {
				bound[p.sv] = false
			}
			if newO {
				bound[p.ov] = false
			}
			if !cont {
				return false
			}
		}
		return true
	}
	walk(0)
	if ctxErr != nil {
		return nil, ctxErr
	}
	return rs, nil
}
