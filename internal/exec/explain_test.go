package exec

import (
	"strings"
	"testing"

	"repro/internal/query"
	"repro/internal/rdf"
)

func TestExplainOrderAndTiers(t *testing.T) {
	e, _ := fig1Engine(t)
	q := fig1cQuery()
	plan, err := e.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Empty || len(plan.Steps) != len(q.Atoms) {
		t.Fatalf("plan: %+v", plan)
	}
	// The first step must be a scan (nothing bound yet) of the most
	// selective atom; with Fig. 1 data, a name or year lookup with one
	// match beats the type scans.
	if plan.Steps[0].Tier != 0 {
		t.Fatalf("first step must be a scan: %v", plan.Steps[0])
	}
	if plan.Steps[0].EstMatches != 1 {
		t.Fatalf("first step should pick a 1-match anchor: %v", plan.Steps[0])
	}
	// After the anchor binds a variable, every later step is a probe or a
	// check — never another blind scan (the query is connected).
	for _, s := range plan.Steps[1:] {
		if s.Tier == 0 {
			t.Fatalf("connected query should not re-scan: %v\n%s", s, plan)
		}
	}
	if !strings.Contains(plan.String(), "probe") && !strings.Contains(plan.String(), "check") {
		t.Errorf("rendering:\n%s", plan)
	}
}

func TestExplainEmptyForUnknownConstant(t *testing.T) {
	e, _ := fig1Engine(t)
	q := &query.ConjunctiveQuery{Atoms: []query.Atom{{
		Pred: rdf.NewIRI("http://nowhere/p"),
		S:    query.Variable("x"),
		O:    query.Variable("y"),
	}}}
	plan, err := e.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Empty {
		t.Fatal("plan should be marked empty")
	}
	if !strings.Contains(plan.String(), "empty") {
		t.Errorf("rendering: %s", plan)
	}
}

func TestExplainRejectsEmptyQuery(t *testing.T) {
	e, _ := fig1Engine(t)
	if _, err := e.Explain(&query.ConjunctiveQuery{}); err == nil {
		t.Fatal("empty query should error")
	}
}
