package baseline

import (
	"repro/internal/graph"
	"repro/internal/store"
)

// BackwardOptions tune the BANKS-style backward search.
type BackwardOptions struct {
	// K is the number of answer trees (default 10).
	K int
	// MaxDist bounds path lengths in edges (default 8).
	MaxDist float64
	// MaxPops is a safety valve (default 5,000,000).
	MaxPops int
}

func (o BackwardOptions) withDefaults() BackwardOptions {
	if o.K <= 0 {
		o.K = 10
	}
	if o.MaxDist <= 0 {
		o.MaxDist = 8
	}
	if o.MaxPops <= 0 {
		o.MaxPops = 5_000_000
	}
	return o
}

// Backward runs the BANKS backward search [1]: from every keyword vertex,
// expand along incoming R-edges in ascending distance order (concurrent
// single-source shortest paths); a vertex settled by every keyword is an
// answer root. Top-k termination uses the BANKS bound — stop when the
// k-th best tree costs no more than the cheapest outstanding expansion —
// which, as Sec. VI-C notes, is only approximate for tree costs that sum
// several paths.
func Backward(g *graph.Graph, keywordSets [][]store.ID, opt BackwardOptions) *Result {
	opt = opt.withDefaults()
	res := &Result{}
	m := len(keywordSets)
	if m == 0 {
		return res
	}
	for _, ks := range keywordSets {
		if len(ks) == 0 {
			return res
		}
	}

	states := make([]*perKeywordState, m)
	h := &itemHeap{}
	for i, ks := range keywordSets {
		states[i] = newPerKeywordState()
		for _, v := range ks {
			h.push(searchItem{v: v, keyword: i, cost: 0})
		}
	}

	cands := newTopkTrees(opt.K)
	for h.Len() > 0 {
		if res.Stats.Popped >= opt.MaxPops {
			break
		}
		it := h.pop()
		res.Stats.Popped++
		st := states[it.keyword]
		if _, settled := st.dist[it.v]; settled {
			continue
		}
		st.dist[it.v] = it.cost
		if it.parent != 0 {
			st.parent[it.v] = it.parent
		}

		if tree, ok := collectRoot(states, it.v); ok {
			cands.add(tree)
		}

		if it.cost < opt.MaxDist {
			for _, e := range g.In(it.v) {
				res.Stats.EdgesSeen++
				if e.Kind != graph.REdge {
					continue
				}
				if _, settled := st.dist[e.Other]; settled {
					continue
				}
				h.push(searchItem{v: e.Other, parent: it.v, keyword: it.keyword, cost: it.cost + 1})
			}
		}

		// BANKS-style early termination.
		if kth, ok := cands.kth(); ok && h.Len() > 0 && kth <= h.items[0].cost {
			break
		}
	}
	res.Trees = cands.results()
	return res
}
