package baseline

import (
	"sort"

	"repro/internal/analysis"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/store"
)

// PartitionScheme selects how the BLINKS block index partitions the graph
// (the BFS/METIS axis of Fig. 5).
type PartitionScheme uint8

const (
	// PartitionBFS grows blocks breadth-first from arbitrary seeds.
	PartitionBFS PartitionScheme = iota
	// PartitionMetis uses the multilevel min-cut partitioner.
	PartitionMetis
)

// String names the scheme as in Fig. 5.
func (s PartitionScheme) String() string {
	if s == PartitionMetis {
		return "METIS"
	}
	return "BFS"
}

// BlinksIndex is the two-level index of the BLINKS baseline [2]: the
// entity graph is partitioned into blocks; a keyword→block index locates
// the blocks containing matches, and per-block compact adjacency serves
// the in-block expansions. Portal vertices (endpoints of cross-block
// edges) connect the block level.
//
// Substitution note (DESIGN.md): the original BLINKS additionally
// precomputes keyword–portal distance lists per block; here in-block
// distances are computed at query time over the block-local adjacency,
// trading the (enormous) precomputed space for per-query work while
// preserving the two-level structure and the block-count trade-off the
// evaluation varies (300 vs 1000 blocks).
type BlinksIndex struct {
	g      *graph.Graph
	scheme PartitionScheme
	blocks int

	vertIDs []store.ID           // dense index → vertex
	denseOf map[store.ID]int32   // vertex → dense index
	parts   partition.Assignment // dense index → block

	// keyword→blocks: which blocks contain a vertex matching the term.
	termBlocks map[string][]int32
	// portals per block (dense indices with cross-block edges).
	portals [][]int32

	// Block-local backward adjacency: for each dense vertex, its R-edge
	// in-neighbors inside the same block and across blocks. These compact
	// arrays are the "block data" a real BLINKS deployment pages in as a
	// unit; Stats.BlockLoads counts those units.
	inSame  [][]int32
	inCross [][]int32

	vix *VertexIndex
}

// BlinksStats describes the built index.
type BlinksStats struct {
	Blocks   int
	Vertices int
	Portals  int
	EdgeCut  int64
}

// BuildBlinks partitions the entity graph into the given number of blocks
// and builds the keyword-block and portal structures.
func BuildBlinks(g *graph.Graph, blocks int, scheme PartitionScheme) *BlinksIndex {
	ix := &BlinksIndex{
		g:          g,
		scheme:     scheme,
		blocks:     blocks,
		denseOf:    make(map[store.ID]int32),
		termBlocks: make(map[string][]int32),
		vix:        BuildVertexIndex(g),
	}
	// Dense numbering of E-vertices.
	g.ForEachVertex(func(id store.ID, kind graph.VertexKind) {
		if kind != graph.EVertex {
			return
		}
		ix.denseOf[id] = int32(len(ix.vertIDs))
		ix.vertIDs = append(ix.vertIDs, id)
	})
	// Build the undirected entity graph for the partitioner.
	pg := partition.NewGraph(len(ix.vertIDs))
	st := g.Store()
	st.ForEach(func(t store.IDTriple) {
		du, okU := ix.denseOf[t.S]
		dv, okV := ix.denseOf[t.O]
		if !okU || !okV {
			return
		}
		if g.Kind(t.O) != graph.EVertex || g.Kind(t.S) != graph.EVertex {
			return
		}
		pg.AddEdge(int(du), int(dv), 1)
	})
	if scheme == PartitionMetis {
		ix.parts = partition.Metis(pg, blocks)
	} else {
		ix.parts = partition.BFS(pg, blocks)
	}

	// Portals: vertices with at least one cross-block edge.
	ix.portals = make([][]int32, blocks)
	isPortal := make([]bool, len(ix.vertIDs))
	for u := 0; u < pg.N(); u++ {
		for _, e := range pg.Adj(u) {
			if ix.parts[u] != ix.parts[e.To] {
				isPortal[u] = true
			}
		}
	}
	for u, p := range isPortal {
		if p {
			b := ix.parts[u]
			ix.portals[b] = append(ix.portals[b], int32(u))
		}
	}

	// Block-local backward adjacency over R-edges.
	ix.inSame = make([][]int32, len(ix.vertIDs))
	ix.inCross = make([][]int32, len(ix.vertIDs))
	st.ForEach(func(t store.IDTriple) {
		du, okU := ix.denseOf[t.S]
		dv, okV := ix.denseOf[t.O]
		if !okU || !okV {
			return
		}
		// Backward adjacency of the object: the subject is an in-neighbor.
		if ix.parts[du] == ix.parts[dv] {
			ix.inSame[dv] = append(ix.inSame[dv], du)
		} else {
			ix.inCross[dv] = append(ix.inCross[dv], du)
		}
	})

	// Keyword→block index from the vertex index's postings.
	for term, verts := range ix.vix.postings {
		seen := map[int32]bool{}
		for _, v := range verts {
			if d, ok := ix.denseOf[v]; ok {
				b := ix.parts[d]
				if !seen[b] {
					seen[b] = true
					ix.termBlocks[term] = append(ix.termBlocks[term], b)
				}
			}
		}
		sort.Slice(ix.termBlocks[term], func(i, j int) bool {
			return ix.termBlocks[term][i] < ix.termBlocks[term][j]
		})
	}
	return ix
}

// Stats reports the block structure.
func (ix *BlinksIndex) Stats() BlinksStats {
	s := BlinksStats{Blocks: ix.blocks, Vertices: len(ix.vertIDs)}
	for _, ps := range ix.portals {
		s.Portals += len(ps)
	}
	// Recompute the cut over R-edges.
	st := ix.g.Store()
	st.ForEach(func(t store.IDTriple) {
		du, okU := ix.denseOf[t.S]
		dv, okV := ix.denseOf[t.O]
		if okU && okV && ix.parts[du] != ix.parts[dv] {
			s.EdgeCut++
		}
	})
	return s
}

// KeywordBlocks returns the blocks containing a match for the keyword —
// the first-level lookup of the two-level index.
func (ix *BlinksIndex) KeywordBlocks(keyword string) []int32 {
	toks := analysis.AnalyzeKeyword(keyword)
	if len(toks) == 0 {
		return nil
	}
	// Intersect the block lists of all tokens.
	blocks := ix.termBlocks[toks[0]]
	for _, tok := range toks[1:] {
		other := ix.termBlocks[tok]
		var inter []int32
		i, j := 0, 0
		for i < len(blocks) && j < len(other) {
			switch {
			case blocks[i] == other[j]:
				inter = append(inter, blocks[i])
				i++
				j++
			case blocks[i] < other[j]:
				i++
			default:
				j++
			}
		}
		blocks = inter
	}
	return blocks
}

// MatchAll exposes the underlying keyword→vertex mapping.
func (ix *BlinksIndex) MatchAll(keywords []string) ([][]store.ID, bool) {
	return ix.vix.MatchAll(keywords)
}

// Search runs the BLINKS-style top-k search: backward expansion organized
// block-at-a-time. When the frontier of keyword i enters a block — at a
// keyword-matching vertex or through a portal — the whole block is
// expanded at once over the block-local adjacency (one BlockLoad), and
// only cross-block edges feed the block-level priority queue. Fewer,
// larger blocks mean fewer loads doing more in-block work; many small
// blocks mean cheap loads but more portal traffic — the trade-off the
// 300-vs-1000 configurations of Fig. 5 probe.
//
// Distances are kept correct by re-relaxation on cheaper re-entry; like
// the original's heuristics, the top-k cutoff is approximate.
func (ix *BlinksIndex) Search(keywordSets [][]store.ID, opt BackwardOptions) *Result {
	opt = opt.withDefaults()
	res := &Result{}
	m := len(keywordSets)
	if m == 0 {
		return res
	}
	for _, ks := range keywordSets {
		if len(ks) == 0 {
			return res
		}
	}

	states := make([]*perKeywordState, m)
	h := &itemHeap{}
	for i, ks := range keywordSets {
		states[i] = newPerKeywordState()
		for _, v := range ks {
			if _, ok := ix.denseOf[v]; !ok {
				continue
			}
			h.push(searchItem{v: v, keyword: i, cost: 0})
		}
	}

	cands := newTopkTrees(opt.K)
	// local heap reused by in-block expansions.
	type localItem struct {
		d      int32
		parent int32
		cost   float64
	}
	for h.Len() > 0 {
		if res.Stats.Popped >= opt.MaxPops {
			break
		}
		it := h.pop()
		res.Stats.Popped++
		st := states[it.keyword]
		if prev, settled := st.dist[it.v]; settled && prev <= it.cost {
			continue
		}
		entry, ok := ix.denseOf[it.v]
		if !ok {
			continue
		}

		// Expand the whole block of it.v for this keyword.
		res.Stats.BlockLoads++
		frontier := []localItem{{d: entry, parent: -1, cost: it.cost}}
		if it.parent != 0 {
			if dp, ok := ix.denseOf[it.parent]; ok {
				frontier[0].parent = dp
			}
		}
		for qi := 0; qi < len(frontier); qi++ {
			cur := frontier[qi]
			v := ix.vertIDs[cur.d]
			if prev, settled := st.dist[v]; settled && prev <= cur.cost {
				continue
			}
			st.dist[v] = cur.cost
			if cur.parent >= 0 {
				st.parent[v] = ix.vertIDs[cur.parent]
			}
			if tree, okRoot := collectRoot(states, v); okRoot {
				cands.add(tree)
			}
			if cur.cost >= opt.MaxDist {
				continue
			}
			for _, nb := range ix.inSame[cur.d] {
				res.Stats.EdgesSeen++
				nv := ix.vertIDs[nb]
				if prev, settled := st.dist[nv]; settled && prev <= cur.cost+1 {
					continue
				}
				frontier = append(frontier, localItem{d: nb, parent: cur.d, cost: cur.cost + 1})
			}
			for _, nb := range ix.inCross[cur.d] {
				res.Stats.EdgesSeen++
				nv := ix.vertIDs[nb]
				if prev, settled := st.dist[nv]; settled && prev <= cur.cost+1 {
					continue
				}
				h.push(searchItem{v: nv, parent: v, keyword: it.keyword, cost: cur.cost + 1})
			}
		}

		if kth, okKth := cands.kth(); okKth && h.Len() > 0 && kth <= h.items[0].cost {
			break
		}
	}
	res.Trees = cands.results()
	return res
}
