package baseline

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/rdf"
	"repro/internal/store"
)

func fig1Graph(t *testing.T) (*graph.Graph, *store.Store) {
	t.Helper()
	st := store.New()
	st.AddAll(rdf.MustParseFig1())
	return graph.Build(st), st
}

func ex(l string) rdf.Term { return rdf.NewIRI(rdf.ExampleNS + l) }

func mustID(t *testing.T, st *store.Store, term rdf.Term) store.ID {
	t.Helper()
	id, ok := st.Lookup(term)
	if !ok {
		t.Fatalf("missing term %v", term)
	}
	return id
}

func TestVertexIndexMatch(t *testing.T) {
	g, st := fig1Graph(t)
	ix := BuildVertexIndex(g)
	cases := []struct {
		kw   string
		want rdf.Term
	}{
		{"cimiano", ex("re2")},
		{"2006", ex("pub1")},
		{"aifb", ex("inst1")},
		{"media", ex("pro1")},   // X-Media
		{"x-media", ex("pro1")}, // multi-token keyword
	}
	for _, c := range cases {
		got := ix.Match(c.kw)
		found := false
		for _, v := range got {
			if st.Term(v) == c.want {
				found = true
			}
		}
		if !found {
			t.Errorf("Match(%q) = %v, missing %v", c.kw, got, c.want)
		}
	}
	if got := ix.Match("nonexistent"); len(got) != 0 {
		t.Errorf("unknown keyword matched %v", got)
	}
}

func TestVertexIndexMatchAll(t *testing.T) {
	g, _ := fig1Graph(t)
	ix := BuildVertexIndex(g)
	sets, ok := ix.MatchAll([]string{"cimiano", "aifb"})
	if !ok || len(sets) != 2 {
		t.Fatalf("MatchAll failed: %v %v", sets, ok)
	}
	if _, ok := ix.MatchAll([]string{"cimiano", "zzz"}); ok {
		t.Fatal("MatchAll should report missing keyword")
	}
}

func keywordSets(t *testing.T, st *store.Store, locals ...string) [][]store.ID {
	t.Helper()
	sets := make([][]store.ID, len(locals))
	for i, l := range locals {
		sets[i] = []store.ID{mustID(t, st, ex(l))}
	}
	return sets
}

func TestBackwardFindsRoots(t *testing.T) {
	g, st := fig1Graph(t)
	// Keywords on re2 (cimiano) and inst1 (aifb).
	res := Backward(g, keywordSets(t, st, "re2", "inst1"), BackwardOptions{K: 5})
	if len(res.Trees) == 0 {
		t.Fatal("backward found no trees")
	}
	best := res.Trees[0]
	// Cheapest root: re2 itself (dist 0 to re2, 1 to inst1 via worksAt).
	if st.Term(best.Root) != ex("re2") || best.Cost != 1 {
		t.Fatalf("best tree root=%v cost=%v, want re2 cost=1", st.Term(best.Root), best.Cost)
	}
	// Paths run root → keyword vertex.
	if p := best.Paths[1]; st.Term(p[0]) != ex("re2") || st.Term(p[len(p)-1]) != ex("inst1") {
		t.Fatalf("path wrong: %v", p)
	}
	// Ascending order.
	for i := 1; i < len(res.Trees); i++ {
		if res.Trees[i].Cost < res.Trees[i-1].Cost {
			t.Fatal("trees not sorted by cost")
		}
	}
}

func TestBackwardDirectionality(t *testing.T) {
	g, st := fig1Graph(t)
	// Root pub1 reaches re2 and "2006" forward; backward search from
	// {re2} and {pub1} must find pub1 as a root.
	res := Backward(g, keywordSets(t, st, "re2", "pub1"), BackwardOptions{K: 5})
	found := false
	for _, tr := range res.Trees {
		if st.Term(tr.Root) == ex("pub1") {
			found = true
		}
	}
	if !found {
		t.Fatal("pub1 should be an answer root")
	}
	// inst1 can NOT be a root for keyword pub1 (no directed path
	// inst1 → pub1), so no tree may be rooted there.
	for _, tr := range res.Trees {
		if st.Term(tr.Root) == ex("inst1") {
			t.Fatal("inst1 is not a valid distinct root for {re2, pub1}")
		}
	}
}

func TestBackwardEmptyKeyword(t *testing.T) {
	g, st := fig1Graph(t)
	res := Backward(g, [][]store.ID{{mustID(t, st, ex("re2"))}, {}}, BackwardOptions{})
	if len(res.Trees) != 0 {
		t.Fatal("empty keyword set should produce no trees")
	}
}

func TestBidirectionalFindsConnections(t *testing.T) {
	g, st := fig1Graph(t)
	// inst1 and pro1 connect only through re1/re2 → pub1 → pro1 paths that
	// require both directions; backward-only search can still root at
	// pub1? pub1 →hasProject→ pro1 and pub1 →author→ re1 →worksAt→ inst1.
	// Bidirectional must find a connection as well.
	res := Bidirectional(g, keywordSets(t, st, "inst1", "pro1"), BidirectionalOptions{K: 5})
	if len(res.Trees) == 0 {
		t.Fatal("bidirectional found no trees")
	}
	for i := 1; i < len(res.Trees); i++ {
		if res.Trees[i].Cost < res.Trees[i-1].Cost {
			t.Fatal("trees not sorted")
		}
	}
}

func TestBidirectionalReachesMoreThanBackward(t *testing.T) {
	// Chain a → b → c: keywords {a} and {c}. No vertex has directed paths
	// to both (b reaches c but not a; a reaches both? a→b→c: a reaches c —
	// actually a is a valid root). Use a ← b → c with keywords {a},{c}:
	// root b. Backward from a: in-edges {b}; from c: in-edges {b}; root b
	// works for backward too. Distinguishing case: a → b ← c with
	// keywords {a},{c}: no directed root exists, but an undirected
	// connection a→b←c does — only bidirectional's forward expansion from
	// a or c can meet (it roots at a or c reaching b forward... still no
	// directed paths root→keyword both ways; bidirectional's relaxed
	// undirected traversal finds it).
	st := store.New()
	ns := "http://d/"
	v := func(l string) rdf.Term { return rdf.NewIRI(ns + l) }
	st.Add(rdf.NewTriple(v("a"), v("p"), v("b")))
	st.Add(rdf.NewTriple(v("c"), v("p"), v("b")))
	g := graph.Build(st)
	ka, _ := st.Lookup(v("a"))
	kc, _ := st.Lookup(v("c"))
	sets := [][]store.ID{{ka}, {kc}}

	back := Backward(g, sets, BackwardOptions{K: 3})
	if len(back.Trees) != 0 {
		t.Fatalf("backward should find nothing on a→b←c, got %d", len(back.Trees))
	}
	bidi := Bidirectional(g, sets, BidirectionalOptions{K: 3})
	if len(bidi.Trees) == 0 {
		t.Fatal("bidirectional should connect a→b←c")
	}
}

func TestBlinksIndexStructure(t *testing.T) {
	g, _ := fig1Graph(t)
	for _, scheme := range []PartitionScheme{PartitionBFS, PartitionMetis} {
		ix := BuildBlinks(g, 3, scheme)
		s := ix.Stats()
		if s.Vertices != 8 {
			t.Errorf("%v: vertices = %d, want 8", scheme, s.Vertices)
		}
		if s.Blocks != 3 {
			t.Errorf("%v: blocks = %d", scheme, s.Blocks)
		}
		// Keyword-block lookup must find the block of inst1 for "aifb".
		blocks := ix.KeywordBlocks("aifb")
		if len(blocks) == 0 {
			t.Errorf("%v: aifb has no blocks", scheme)
		}
	}
}

func TestBlinksSearchAgreesWithBackward(t *testing.T) {
	g, st := fig1Graph(t)
	sets := keywordSets(t, st, "re2", "inst1")
	back := Backward(g, sets, BackwardOptions{K: 5})
	for _, blocks := range []int{1, 2, 4} {
		for _, scheme := range []PartitionScheme{PartitionBFS, PartitionMetis} {
			ix := BuildBlinks(g, blocks, scheme)
			res := ix.Search(sets, BackwardOptions{K: 5})
			if len(res.Trees) == 0 {
				t.Fatalf("%v/%d: no trees", scheme, blocks)
			}
			if res.Trees[0].Cost != back.Trees[0].Cost {
				t.Errorf("%v/%d: top cost %v != backward %v",
					scheme, blocks, res.Trees[0].Cost, back.Trees[0].Cost)
			}
			if res.Stats.BlockLoads == 0 {
				t.Errorf("%v/%d: no block loads recorded", scheme, blocks)
			}
		}
	}
}

// TestSearchersOnRandomGraphs cross-checks backward and BLINKS top-1
// against a naive oracle computing, for every potential root, the sum of
// shortest directed distances to the keyword sets.
func TestSearchersOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	ns := "http://r/"
	for round := 0; round < 15; round++ {
		st := store.New()
		n := 12 + rng.Intn(20)
		var ids []rdf.Term
		for i := 0; i < n; i++ {
			ids = append(ids, rdf.NewIRI(ns+"v"+itoa(i)))
		}
		for i := 0; i < n*2; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				st.Add(rdf.NewTriple(ids[a], rdf.NewIRI(ns+"p"), ids[b]))
			}
		}
		g := graph.Build(st)
		// two singleton keyword sets
		ka, ok1 := st.Lookup(ids[rng.Intn(n)])
		kb, ok2 := st.Lookup(ids[rng.Intn(n)])
		if !ok1 || !ok2 {
			continue
		}
		sets := [][]store.ID{{ka}, {kb}}

		oracle := oracleBestRoot(g, sets, 8)
		back := Backward(g, sets, BackwardOptions{K: 3, MaxDist: 8})
		if oracle < 0 {
			if len(back.Trees) != 0 {
				t.Fatalf("round %d: oracle says unreachable, backward found %v", round, back.Trees[0])
			}
			continue
		}
		if len(back.Trees) == 0 {
			t.Fatalf("round %d: backward found nothing, oracle cost %v", round, oracle)
		}
		if back.Trees[0].Cost != float64(oracle) {
			t.Fatalf("round %d: backward top cost %v, oracle %v", round, back.Trees[0].Cost, oracle)
		}
		ix := BuildBlinks(g, 3, PartitionMetis)
		bl := ix.Search(sets, BackwardOptions{K: 3, MaxDist: 8})
		if len(bl.Trees) == 0 || bl.Trees[0].Cost != float64(oracle) {
			got := float64(-1)
			if len(bl.Trees) > 0 {
				got = bl.Trees[0].Cost
			}
			t.Fatalf("round %d: blinks top cost %v, oracle %v", round, got, oracle)
		}
	}
}

// oracleBestRoot returns min over roots of Σ_i dist(root → K_i), or -1.
func oracleBestRoot(g *graph.Graph, sets [][]store.ID, maxDist int) int {
	st := g.Store()
	best := -1
	g.ForEachVertex(func(root store.ID, kind graph.VertexKind) {
		if kind != graph.EVertex {
			return
		}
		total := 0
		for _, ks := range sets {
			d := directedBFS(g, root, ks, maxDist)
			if d < 0 {
				return
			}
			total += d
		}
		if best < 0 || total < best {
			best = total
		}
	})
	_ = st
	return best
}

// directedBFS returns the length of the shortest directed path from root
// to any vertex in targets following R-edges, or -1.
func directedBFS(g *graph.Graph, root store.ID, targets []store.ID, maxDist int) int {
	tset := map[store.ID]bool{}
	for _, v := range targets {
		tset[v] = true
	}
	if tset[root] {
		return 0
	}
	dist := map[store.ID]int{root: 0}
	queue := []store.ID{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if dist[v] >= maxDist {
			continue
		}
		for _, e := range g.Out(v) {
			if e.Kind != graph.REdge {
				continue
			}
			if _, ok := dist[e.Other]; ok {
				continue
			}
			dist[e.Other] = dist[v] + 1
			if tset[e.Other] {
				return dist[e.Other]
			}
			queue = append(queue, e.Other)
		}
	}
	return -1
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return string(rune('a'+i/10)) + string(rune('0'+i%10))
}
