package baseline

import (
	"math"

	"repro/internal/graph"
	"repro/internal/store"
)

// BidirectionalOptions tune the BANKS-II-style bidirectional search.
type BidirectionalOptions struct {
	// K is the number of answer trees (default 10).
	K int
	// MaxDist bounds path lengths in edges (default 8).
	MaxDist float64
	// Mu is the per-hop activation decay of the spreading-activation
	// prioritization (default 0.7).
	Mu float64
	// MaxPops is a safety valve (default 5,000,000).
	MaxPops int
}

func (o BidirectionalOptions) withDefaults() BidirectionalOptions {
	if o.K <= 0 {
		o.K = 10
	}
	if o.MaxDist <= 0 {
		o.MaxDist = 8
	}
	if o.Mu <= 0 || o.Mu >= 1 {
		o.Mu = 0.7
	}
	if o.MaxPops <= 0 {
		o.MaxPops = 5_000_000
	}
	return o
}

// Bidirectional runs the BANKS-II search [14]: expansion proceeds along
// both incoming and outgoing edges ("from some vertices the answer root
// can be reached faster by following outgoing rather than incoming
// edges"), prioritized by spreading activation — each keyword origin
// starts with activation 1/|K_i| which decays by Mu per hop, and the most
// activated frontier vertex is expanded first. As in the original, this
// heuristic provides no top-k guarantee; termination is by activation
// exhaustion against the current k-th tree cost.
func Bidirectional(g *graph.Graph, keywordSets [][]store.ID, opt BidirectionalOptions) *Result {
	opt = opt.withDefaults()
	res := &Result{}
	m := len(keywordSets)
	if m == 0 {
		return res
	}
	for _, ks := range keywordSets {
		if len(ks) == 0 {
			return res
		}
	}

	states := make([]*perKeywordState, m)
	h := &itemHeap{byAct: true}
	for i, ks := range keywordSets {
		states[i] = newPerKeywordState()
		act := 1 / float64(len(ks))
		for _, v := range ks {
			h.push(searchItem{v: v, keyword: i, cost: 0, act: act})
		}
	}

	cands := newTopkTrees(opt.K)
	for h.Len() > 0 {
		if res.Stats.Popped >= opt.MaxPops {
			break
		}
		it := h.pop()
		res.Stats.Popped++
		st := states[it.keyword]
		if prev, settled := st.dist[it.v]; settled && prev <= it.cost {
			continue
		}
		st.dist[it.v] = it.cost
		if it.parent != 0 {
			st.parent[it.v] = it.parent
		}

		if tree, ok := collectRoot(states, it.v); ok {
			cands.add(tree)
		}

		if it.cost < opt.MaxDist {
			childAct := it.act * opt.Mu
			expand := func(other store.ID, kind graph.EdgeKind) {
				res.Stats.EdgesSeen++
				if kind != graph.REdge {
					return
				}
				if prev, settled := st.dist[other]; settled && prev <= it.cost+1 {
					return
				}
				h.push(searchItem{
					v: other, parent: it.v, keyword: it.keyword,
					cost: it.cost + 1, act: childAct,
				})
			}
			for _, e := range g.In(it.v) {
				expand(e.Other, e.Kind)
			}
			for _, e := range g.Out(it.v) {
				expand(e.Other, e.Kind)
			}
		}

		// Heuristic termination: the highest remaining activation implies
		// a minimum depth; when even that depth cannot beat the k-th tree,
		// stop. (No guarantee — activation is not a cost bound.)
		if kth, ok := cands.kth(); ok && h.Len() > 0 {
			top := h.items[0]
			impliedDepth := math.Log(top.act*float64(m)) / math.Log(opt.Mu)
			if impliedDepth > kth {
				break
			}
		}
	}
	res.Trees = cands.results()
	return res
}
