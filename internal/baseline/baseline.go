// Package baseline implements the three keyword-search families the paper
// compares against in Fig. 5, all operating directly on the *data graph*
// (not the summary graph):
//
//   - backward search (BANKS [1]): multi-origin Dijkstra from the keyword
//     vertices along incoming edges; a vertex reached from every keyword
//     is an answer root (distinct-root answer trees);
//   - bidirectional search (BANKS-II [14]): expansion along both edge
//     directions with spreading-activation prioritization — no top-k
//     guarantee, as the paper notes;
//   - BLINKS-style search [2]: backward search over a two-level block
//     index (partitioned graph + keyword→block index); see blinks.go.
//
// Following the relational lineage of these systems ("tuples correspond to
// vertices and foreign relationships to edges"), the traversal graph is
// the entity graph: E-vertices connected by R-edges. Keywords are mapped
// to entity vertices through their attribute values and labels by a
// VertexIndex (exact stemmed matching, as in [1], [14]).
package baseline

import (
	"repro/internal/analysis"
	"repro/internal/graph"
	"repro/internal/store"
)

// VertexIndex maps stemmed terms to the E-vertices whose attribute values
// or labels contain them — the keyword-to-vertex mapping used by all
// baseline searchers.
type VertexIndex struct {
	g        *graph.Graph
	postings map[string][]store.ID
}

// BuildVertexIndex scans the data graph's A-edges and entity labels.
func BuildVertexIndex(g *graph.Graph) *VertexIndex {
	ix := &VertexIndex{g: g, postings: make(map[string][]store.ID)}
	add := func(term string, v store.ID) {
		list := ix.postings[term]
		if n := len(list); n > 0 && list[n-1] == v {
			return // consecutive duplicate (same label term twice)
		}
		ix.postings[term] = append(list, v)
	}
	st := g.Store()
	st.ForEach(func(t store.IDTriple) {
		if g.Kind(t.O) != graph.VVertex {
			return
		}
		for _, term := range analysis.Analyze(g.Label(t.O)) {
			add(term, t.S)
		}
	})
	g.ForEachVertex(func(id store.ID, kind graph.VertexKind) {
		if kind != graph.EVertex {
			return
		}
		for _, term := range analysis.Analyze(g.Label(id)) {
			add(term, id)
		}
	})
	// Deduplicate postings.
	for term, list := range ix.postings {
		seen := map[store.ID]bool{}
		out := list[:0]
		for _, v := range list {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		ix.postings[term] = out
	}
	return ix
}

// Match returns the entity vertices matching a keyword (every token of the
// keyword must match some term of the vertex's values/labels).
func (ix *VertexIndex) Match(keyword string) []store.ID {
	toks := analysis.AnalyzeKeyword(keyword)
	if len(toks) == 0 {
		return nil
	}
	result := ix.postings[toks[0]]
	for _, tok := range toks[1:] {
		set := map[store.ID]bool{}
		for _, v := range ix.postings[tok] {
			set[v] = true
		}
		var inter []store.ID
		for _, v := range result {
			if set[v] {
				inter = append(inter, v)
			}
		}
		result = inter
	}
	return result
}

// MatchAll maps every keyword; ok is false if some keyword has no match.
func (ix *VertexIndex) MatchAll(keywords []string) (sets [][]store.ID, ok bool) {
	sets = make([][]store.ID, len(keywords))
	ok = true
	for i, kw := range keywords {
		sets[i] = ix.Match(kw)
		if len(sets[i]) == 0 {
			ok = false
		}
	}
	return sets, ok
}

// AnswerTree is a distinct-root answer: a root vertex with one shortest
// path to a matching vertex per keyword.
type AnswerTree struct {
	Root store.ID
	// Paths[i] runs from Root to the keyword-i vertex.
	Paths [][]store.ID
	// Cost is the sum of the paths' edge counts (the C1-equivalent tree
	// cost these systems rank by).
	Cost float64
}

// SearchStats counts traversal work for the performance comparison.
type SearchStats struct {
	Popped     int // priority-queue pops
	EdgesSeen  int // adjacency entries scanned
	BlockLoads int // BLINKS only: block expansions
}

// Result is the outcome of a baseline search.
type Result struct {
	Trees []*AnswerTree
	Stats SearchStats
}

// searchItem is a PQ entry shared by the searchers. parent is the vertex
// the expansion came from (0 at origins); it becomes the settled parent
// pointer when the item wins the pop, which keeps parent chains consistent
// with the shortest distances.
type searchItem struct {
	v       store.ID
	parent  store.ID
	keyword int
	cost    float64
	act     float64 // bidirectional only: activation
}

// itemHeap is an implicit 4-ary min-heap over packed searchItems — the
// same boxing-free layout as the exploration core's cursor queue, so the
// Fig. 5 comparison stays apples-to-apples: baselines pay no per-push
// interface{} allocation either. (Kept separate from core's cursorQueue:
// the payload and the dual cost/activation ordering differ, and adding a
// comparator indirection to the core's hot loop to share ~40 lines is
// the wrong trade.)
//
// Pop order among equal-priority items is unspecified and differs from
// the pre-rewrite container/heap — intentionally accepted: the baselines
// rank by cost, and which equal-cost path settles a vertex first does
// not change tree costs or root sets (the properties their tests pin);
// these heuristic systems carry no exactness guarantee to preserve.
type itemHeap struct {
	items []searchItem
	byAct bool // order by descending activation instead of ascending cost
}

func (h *itemHeap) Len() int { return len(h.items) }

func (h *itemHeap) before(a, b searchItem) bool {
	if h.byAct {
		return a.act > b.act
	}
	return a.cost < b.cost
}

func (h *itemHeap) push(it searchItem) {
	h.items = append(h.items, searchItem{})
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !h.before(it, h.items[p]) {
			break
		}
		h.items[i] = h.items[p]
		i = p
	}
	h.items[i] = it
}

func (h *itemHeap) pop() searchItem {
	top := h.items[0]
	n := len(h.items) - 1
	last := h.items[n]
	h.items = h.items[:n]
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			min := c
			for j := c + 1; j < end; j++ {
				if h.before(h.items[j], h.items[min]) {
					min = j
				}
			}
			if !h.before(h.items[min], last) {
				break
			}
			h.items[i] = h.items[min]
			i = min
		}
		h.items[i] = last
	}
	return top
}

// perKeywordState tracks settled distances and parents for one keyword.
type perKeywordState struct {
	dist   map[store.ID]float64
	parent map[store.ID]store.ID
}

func newPerKeywordState() *perKeywordState {
	return &perKeywordState{
		dist:   make(map[store.ID]float64),
		parent: make(map[store.ID]store.ID),
	}
}

// pathTo reconstructs root→keyword-vertex order (the parent chain runs
// from the root back toward the origin, so the walk itself is the path).
func (s *perKeywordState) pathTo(v store.ID) []store.ID {
	var path []store.ID
	cur := v
	for {
		path = append(path, cur)
		next, ok := s.parent[cur]
		if !ok {
			break
		}
		cur = next
	}
	return path
}

// collectRoot builds an answer tree at root v if v has been settled by
// every keyword.
func collectRoot(states []*perKeywordState, v store.ID) (*AnswerTree, bool) {
	tree := &AnswerTree{Root: v, Paths: make([][]store.ID, len(states))}
	for i, st := range states {
		d, ok := st.dist[v]
		if !ok {
			return nil, false
		}
		tree.Cost += d
		tree.Paths[i] = st.pathTo(v)
	}
	return tree, true
}

// topkTrees maintains the k best distinct-root trees.
type topkTrees struct {
	k      int
	byRoot map[store.ID]*AnswerTree
}

func newTopkTrees(k int) *topkTrees {
	return &topkTrees{k: k, byRoot: make(map[store.ID]*AnswerTree)}
}

func (t *topkTrees) add(tree *AnswerTree) {
	if prev, ok := t.byRoot[tree.Root]; ok && prev.Cost <= tree.Cost {
		return
	}
	t.byRoot[tree.Root] = tree
}

// kth returns the cost of the k-th best tree (ok=false with fewer than k).
func (t *topkTrees) kth() (float64, bool) {
	if len(t.byRoot) < t.k {
		return 0, false
	}
	costs := make([]float64, 0, len(t.byRoot))
	for _, tr := range t.byRoot {
		costs = append(costs, tr.Cost)
	}
	quickSelect(costs, t.k-1)
	return costs[t.k-1], true
}

func (t *topkTrees) results() []*AnswerTree {
	out := make([]*AnswerTree, 0, len(t.byRoot))
	for _, tr := range t.byRoot {
		out = append(out, tr)
	}
	sortTrees(out)
	if len(out) > t.k {
		out = out[:t.k]
	}
	return out
}

func sortTrees(ts []*AnswerTree) {
	// insertion sort: lists are k-sized
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && less(ts[j], ts[j-1]); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

func less(a, b *AnswerTree) bool {
	if a.Cost != b.Cost {
		return a.Cost < b.Cost
	}
	return a.Root < b.Root
}

// quickSelect partially sorts costs so costs[k] is the k-th smallest.
func quickSelect(costs []float64, k int) {
	lo, hi := 0, len(costs)-1
	for lo < hi {
		pivot := costs[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for costs[i] < pivot {
				i++
			}
			for costs[j] > pivot {
				j--
			}
			if i <= j {
				costs[i], costs[j] = costs[j], costs[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return
		}
	}
}
