// Package summary implements the paper's graph index: the summary graph of
// Definition 4 (a class-level aggregation of the data graph) and its
// query-time augmentation with keyword-matching elements of Definition 5.
//
// The summary graph is an *element* graph: both vertices and edges are
// addressable elements, because keywords may map to edges (Sec. IV-A) and
// the exploration of Algorithm 1 traverses elements, not just vertices.
// The neighbors of a vertex element are its incident edge elements (in
// both directions — forward search is as important as backward search,
// Sec. VI-A); the neighbors of an edge element are its two endpoints.
package summary

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/store"
)

// ElemID addresses an element of a (possibly augmented) summary graph.
// IDs are dense: base-graph elements first, augmentation elements after.
type ElemID int32

// NoElem is the invalid element ID.
const NoElem ElemID = -1

// ElemKind discriminates summary-graph elements.
type ElemKind uint8

const (
	// ClassVertex aggregates all entities of one class ([[v']], Def. 4);
	// Term is the class's dictionary ID, or 0 for the synthetic Thing.
	ClassVertex ElemKind = iota
	// ValueVertex is an augmentation vertex for a keyword-matching
	// V-vertex (Term = literal ID) or the artificial "value" node of
	// Def. 5 (Term = 0).
	ValueVertex
	// RelEdge aggregates data R-edges with one predicate between two
	// classes; Term is the predicate ID.
	RelEdge
	// AttrEdge is an augmentation edge from a class to a ValueVertex;
	// Term is the attribute predicate ID.
	AttrEdge
	// SubclassEdge connects a class to its superclass.
	SubclassEdge
)

// String names the element kind.
func (k ElemKind) String() string {
	switch k {
	case ClassVertex:
		return "class"
	case ValueVertex:
		return "value"
	case RelEdge:
		return "rel-edge"
	case AttrEdge:
		return "attr-edge"
	case SubclassEdge:
		return "subclass-edge"
	default:
		return fmt.Sprintf("ElemKind(%d)", uint8(k))
	}
}

// IsVertex reports whether the kind is a vertex kind.
func (k ElemKind) IsVertex() bool { return k == ClassVertex || k == ValueVertex }

// Element is one summary-graph element.
type Element struct {
	Kind ElemKind
	// Term is the dictionary ID behind the element: class ID, literal ID,
	// or predicate ID depending on Kind. 0 means Thing (ClassVertex) or
	// the artificial value node (ValueVertex).
	Term store.ID
	// From and To are the endpoints of edge elements (NoElem for vertices).
	From, To ElemID
	// Agg is the aggregation count: |vagg| for class vertices (number of
	// entities in the class) and |eagg| for relation edges (number of
	// data R-edges collapsed into this summary edge). 1 for augmentation
	// elements and subclass edges.
	Agg int
}

// Graph is the base summary graph built off-line from a data graph. It is
// immutable after Build; query-time state lives in Augmented.
type Graph struct {
	data     *graph.Graph
	elems    []Element
	nbrs     [][]ElemID
	classOf  map[store.ID]ElemID // class term → vertex element
	thing    ElemID              // the Thing vertex
	relEdges map[store.ID][]ElemID

	// Totals of the underlying data graph used by the popularity cost
	// (Sec. V): entityTotal = |V| interpreted as the number of E-vertices,
	// redgeTotal = |E| as the number of data R-edges. The paper's wording
	// ("vertices in the summary graph") would allow |vagg| > |V|, driving
	// costs negative; interpreting the totals over the data graph keeps
	// c(n) ∈ (0,1], which the monotonicity of Theorem 1 requires.
	entityTotal int
	redgeTotal  int
}

// Build derives the summary graph of Definition 4 from a data graph:
// one vertex per class plus Thing, one relation edge per
// (predicate, source class, target class) combination present in the
// data, and subclass edges between class vertices.
func Build(g *graph.Graph) *Graph {
	sg := &Graph{
		data:     g,
		classOf:  make(map[store.ID]ElemID),
		relEdges: make(map[store.ID][]ElemID),
	}

	// Vertices: all C-vertices plus Thing.
	g.ForEachVertex(func(id store.ID, kind graph.VertexKind) {
		if kind == graph.CVertex {
			sg.classOf[id] = sg.addElement(Element{Kind: ClassVertex, Term: id, From: NoElem, To: NoElem})
		}
	})
	sg.thing = sg.addElement(Element{Kind: ClassVertex, Term: 0, From: NoElem, To: NoElem})

	// Aggregate entities into classes ([[v']]) and count |vagg|.
	st := g.Store()
	g.ForEachVertex(func(id store.ID, kind graph.VertexKind) {
		if kind != graph.EVertex {
			return
		}
		sg.entityTotal++
		for _, c := range sg.classesOrThing(id) {
			sg.elems[c].Agg++
		}
	})

	// Aggregate R-edges and subclass edges.
	type edgeKey struct {
		p        store.ID
		from, to ElemID
	}
	edgeAt := make(map[edgeKey]ElemID)
	full := st.Range(store.Wildcard, store.Wildcard, store.Wildcard)
	for i := 0; i < full.Len(); i++ {
		t := full.Triple(i)
		switch {
		case g.TypeID() != 0 && t.P == g.TypeID():
			continue
		case g.SubclassID() != 0 && t.P == g.SubclassID():
			from, okF := sg.classOf[t.S]
			to, okT := sg.classOf[t.O]
			if !okF || !okT {
				continue
			}
			k := edgeKey{t.P, from, to}
			if _, dup := edgeAt[k]; !dup {
				edgeAt[k] = sg.addElement(Element{Kind: SubclassEdge, Term: t.P, From: from, To: to, Agg: 1})
			}
		default:
			if g.Kind(t.O) != graph.EVertex || g.Kind(t.S) != graph.EVertex {
				continue // A-edges and irregular edges are not part of Def. 4
			}
			sg.redgeTotal++
			for _, from := range sg.classesOrThing(t.S) {
				for _, to := range sg.classesOrThing(t.O) {
					k := edgeKey{t.P, from, to}
					if e, dup := edgeAt[k]; dup {
						sg.elems[e].Agg++
					} else {
						e = sg.addElement(Element{Kind: RelEdge, Term: t.P, From: from, To: to, Agg: 1})
						edgeAt[k] = e
						sg.relEdges[t.P] = append(sg.relEdges[t.P], e)
					}
				}
			}
		}
	}

	// Adjacency: vertex ↔ incident edges, edge ↔ endpoints.
	sg.nbrs = make([][]ElemID, len(sg.elems))
	for id, el := range sg.elems {
		if el.Kind.IsVertex() {
			continue
		}
		e := ElemID(id)
		sg.nbrs[e] = appendUnique(sg.nbrs[e], el.From)
		sg.nbrs[e] = appendUnique(sg.nbrs[e], el.To)
		sg.nbrs[el.From] = append(sg.nbrs[el.From], e)
		if el.To != el.From {
			sg.nbrs[el.To] = append(sg.nbrs[el.To], e)
		}
	}
	return sg
}

// classesOrThing maps an entity to its class vertex elements, or to the
// Thing vertex when untyped.
func (sg *Graph) classesOrThing(e store.ID) []ElemID {
	cs := sg.data.Classes(e)
	if len(cs) == 0 {
		return []ElemID{sg.thing}
	}
	out := make([]ElemID, 0, len(cs))
	for _, c := range cs {
		if el, ok := sg.classOf[c]; ok {
			out = append(out, el)
		}
	}
	if len(out) == 0 {
		return []ElemID{sg.thing}
	}
	return out
}

func (sg *Graph) addElement(el Element) ElemID {
	sg.elems = append(sg.elems, el)
	return ElemID(len(sg.elems) - 1)
}

func appendUnique(s []ElemID, v ElemID) []ElemID {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// Data returns the underlying data graph.
func (sg *Graph) Data() *graph.Graph { return sg.data }

// ReplaceData swaps the data graph the summary resolves terms and labels
// against. The summary's own structure — elements, adjacency, class map,
// aggregation counts — is self-contained after Build; the data graph is
// only consulted to render labels and to resolve element terms during
// query mapping. The sharded coordinator uses this to drop the full data
// graph after the off-line build, substituting a slim graph over a
// dictionary-only store (store.DictionaryView): term resolution keeps
// working in the same ID space, while the triples live on the shards.
// The replacement must use the same dictionary IDs as the original.
func (sg *Graph) ReplaceData(g *graph.Graph) { sg.data = g }

// NumElements returns the number of base elements.
func (sg *Graph) NumElements() int { return len(sg.elems) }

// NumVertices returns the number of base vertex elements.
func (sg *Graph) NumVertices() int {
	n := 0
	for _, el := range sg.elems {
		if el.Kind.IsVertex() {
			n++
		}
	}
	return n
}

// Element returns a base element by ID.
func (sg *Graph) Element(id ElemID) Element { return sg.elems[id] }

// Neighbors returns the base adjacency of id.
func (sg *Graph) Neighbors(id ElemID) []ElemID { return sg.nbrs[id] }

// ClassElem returns the vertex element of a class term (ok=false if the
// term is not a class in this graph).
func (sg *Graph) ClassElem(c store.ID) (ElemID, bool) {
	el, ok := sg.classOf[c]
	return el, ok
}

// Thing returns the synthetic Thing vertex element.
func (sg *Graph) Thing() ElemID { return sg.thing }

// RelEdgesWithPredicate returns all relation-edge elements labelled p.
func (sg *Graph) RelEdgesWithPredicate(p store.ID) []ElemID { return sg.relEdges[p] }

// EntityTotal returns |V| of the popularity cost: the number of E-vertices
// in the data graph.
func (sg *Graph) EntityTotal() int { return sg.entityTotal }

// RelEdgeTotal returns |E| of the popularity cost: the number of R-edges
// in the data graph.
func (sg *Graph) RelEdgeTotal() int { return sg.redgeTotal }

// Label renders an element's human-readable label (class name, predicate
// name, literal value, "Thing" or "value" for synthetic nodes).
func (sg *Graph) Label(el Element) string {
	if el.Term == 0 {
		if el.Kind == ClassVertex {
			return "Thing"
		}
		return "value"
	}
	return sg.data.Label(el.Term)
}
