package summary

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/rdf"
	"repro/internal/store"
)

// randomDataGraph builds a random typed RDF graph for property tests.
func randomDataGraph(rng *rand.Rand) *graph.Graph {
	st := store.New()
	ns := "http://prop/"
	nClasses := 2 + rng.Intn(5)
	nEnts := 5 + rng.Intn(30)
	nPreds := 1 + rng.Intn(4)
	ents := make([]rdf.Term, nEnts)
	for i := range ents {
		ents[i] = rdf.NewIRI(ns + "e" + itoa(i))
		// Some entities stay untyped; some get multiple classes.
		for c := 0; c < rng.Intn(3); c++ {
			st.Add(rdf.NewTriple(ents[i], rdf.NewIRI(rdf.RDFType),
				rdf.NewIRI(ns+"C"+itoa(rng.Intn(nClasses)))))
		}
	}
	for i := 0; i < nEnts*2; i++ {
		a, b := rng.Intn(nEnts), rng.Intn(nEnts)
		st.Add(rdf.NewTriple(ents[a], rdf.NewIRI(ns+"p"+itoa(rng.Intn(nPreds))), ents[b]))
	}
	// Attributes.
	for i := 0; i < nEnts; i++ {
		if rng.Intn(2) == 0 {
			st.Add(rdf.NewTriple(ents[i], rdf.NewIRI(ns+"name"),
				rdf.NewLiteral("label "+itoa(i))))
		}
	}
	return graph.Build(st)
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// TestSummaryInvariantsOnRandomGraphs checks Definition 4 invariants over
// random graphs: adjacency symmetry, vertex/edge alternation, aggregate
// accounting, and path soundness for every data R-edge.
func TestSummaryInvariantsOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for round := 0; round < 25; round++ {
		g := randomDataGraph(rng)
		sg := Build(g)

		// 1. Aggregates: class vertex counts sum to Σ|classes(e)| with
		// untyped entities counted once under Thing.
		wantAgg := 0
		g.ForEachVertex(func(id store.ID, kind graph.VertexKind) {
			if kind != graph.EVertex {
				return
			}
			if n := len(g.Classes(id)); n == 0 {
				wantAgg++
			} else {
				wantAgg += n
			}
		})
		gotAgg := 0
		for i := 0; i < sg.NumElements(); i++ {
			el := sg.Element(ElemID(i))
			if el.Kind == ClassVertex {
				gotAgg += el.Agg
			}
		}
		if gotAgg != wantAgg {
			t.Fatalf("round %d: class aggregates %d, want %d", round, gotAgg, wantAgg)
		}

		// 2. Edge aggregates: rel-edge Agg sums to Σ over data R-edges of
		// |classes(s)|·|classes(o)| (Thing counting as one class).
		wantEdgeAgg := 0
		st := g.Store()
		st.ForEach(func(tr store.IDTriple) {
			if g.TypeID() != 0 && tr.P == g.TypeID() {
				return
			}
			if g.Kind(tr.S) != graph.EVertex || g.Kind(tr.O) != graph.EVertex {
				return
			}
			cs, co := len(g.Classes(tr.S)), len(g.Classes(tr.O))
			if cs == 0 {
				cs = 1
			}
			if co == 0 {
				co = 1
			}
			wantEdgeAgg += cs * co
		})
		gotEdgeAgg := 0
		for i := 0; i < sg.NumElements(); i++ {
			el := sg.Element(ElemID(i))
			if el.Kind == RelEdge {
				gotEdgeAgg += el.Agg
			}
		}
		if gotEdgeAgg != wantEdgeAgg {
			t.Fatalf("round %d: edge aggregates %d, want %d", round, gotEdgeAgg, wantEdgeAgg)
		}

		// 3. Structural invariants.
		for i := 0; i < sg.NumElements(); i++ {
			id := ElemID(i)
			el := sg.Element(id)
			for _, nb := range sg.Neighbors(id) {
				nbEl := sg.Element(nb)
				if el.Kind.IsVertex() == nbEl.Kind.IsVertex() {
					t.Fatalf("round %d: adjacency does not alternate vertex/edge", round)
				}
				back := false
				for _, nb2 := range sg.Neighbors(nb) {
					if nb2 == id {
						back = true
					}
				}
				if !back {
					t.Fatalf("round %d: asymmetric adjacency", round)
				}
			}
			if !el.Kind.IsVertex() {
				if el.From == NoElem || el.To == NoElem {
					t.Fatalf("round %d: edge with missing endpoint", round)
				}
			}
		}
	}
}
