package summary

import (
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

// TestNeighborsDoesNotAllocate pins the hot-path contract of the
// allocation-free exploration core: Augmented.Neighbors never builds a
// merged slice per call — base+bonus adjacency is precomputed once at
// Augment time. It covers all three element cases: a base element with
// bonus neighbors (the formerly allocating path), a plain base element,
// and an augmentation element.
func TestNeighborsDoesNotAllocate(t *testing.T) {
	sg, st := buildFig1(t)
	name, _ := st.Lookup(ex("name"))
	aifb, _ := st.Lookup(rdf.NewLiteral("AIFB"))
	instID, _ := st.Lookup(ex("Institute"))
	ag := sg.Augment([][]Match{{
		{Kind: MatchValue, Score: 0.9, Value: aifb, Pred: name, Classes: []store.ID{instID}},
	}})

	inst := elemByClass(t, sg, st, "Institute")
	pub := elemByClass(t, sg, st, "Publication")
	extra := ag.Seeds()[0][0] // the augmentation value vertex
	if len(ag.Neighbors(inst)) <= len(sg.Neighbors(inst)) {
		t.Fatal("test premise broken: Institute gained no bonus neighbors")
	}

	var sink []ElemID
	allocs := testing.AllocsPerRun(100, func() {
		sink = ag.Neighbors(inst)
		sink = ag.Neighbors(pub)
		sink = ag.Neighbors(extra)
	})
	if allocs != 0 {
		t.Errorf("Neighbors allocates %.1f per 3 calls, want 0", allocs)
	}
	_ = sink
}

// TestMatchScoreDoesNotAllocate guards the dense score table: MatchScore
// runs once per created cursor under the C3 cost function.
func TestMatchScoreDoesNotAllocate(t *testing.T) {
	sg, st := buildFig1(t)
	name, _ := st.Lookup(ex("name"))
	aifb, _ := st.Lookup(rdf.NewLiteral("AIFB"))
	instID, _ := st.Lookup(ex("Institute"))
	ag := sg.Augment([][]Match{{
		{Kind: MatchValue, Score: 0.9, Value: aifb, Pred: name, Classes: []store.ID{instID}},
	}})
	seed := ag.Seeds()[0][0]
	var sink float64
	allocs := testing.AllocsPerRun(100, func() {
		sink = ag.MatchScore(seed)
		sink = ag.MatchScore(0)
	})
	if allocs != 0 {
		t.Errorf("MatchScore allocates %.1f per 2 calls, want 0", allocs)
	}
	_ = sink
}
