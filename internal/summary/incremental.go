package summary

import (
	"repro/internal/graph"
	"repro/internal/store"
)

// relKey identifies a RelEdge element: one predicate between two class
// vertices.
type relKey struct {
	p        store.ID
	from, to ElemID
}

// ApplyDelta incrementally maintains the summary graph across an epoch
// swap: given the summary over the old data graph, the classified graph
// over the merged (old ∪ delta) store, and the delta's triples, it
// returns a new summary equal — element for element, ID for ID — to
// Build(newG), without rescanning the old triples. ok is false when the
// delta is not shape-preserving, in which case the caller must fall
// back to a full Build.
//
// The fast path covers the append-heavy ingest shape: new entities
// (fresh subjects) carrying type edges to existing classes, attribute
// edges, and relation edges along already-summarized
// (predicate, class, class) combinations. It preserves element IDs
// exactly because under these constraints the merged store's SPO scan
// is the old scan followed by the delta's rows (fresh subject IDs sort
// last), so Build would create the same elements in the same order and
// only the aggregation counts differ. Anything that would mint or
// reorder elements — subclass axioms, new classes, typing of existing
// entities, relation edges along new combinations, reclassified old
// terms — bails to the rebuild path.
//
// The returned summary shares the old one's immutable adjacency and
// lookup maps; only the element table is copied. The
// summary_prop_test.go invariants and the equivalence property test in
// incremental_test.go are the correctness spec.
func ApplyDelta(sg *Graph, newG *graph.Graph, delta []store.IDTriple) (*Graph, bool) {
	oldG := sg.data
	if oldG == nil || oldG.Store() == nil {
		return nil, false
	}
	oldTerms := store.ID(oldG.Store().NumTerms())
	newTerms := store.ID(newG.Store().NumTerms())
	typeID, subID := newG.TypeID(), newG.SubclassID()

	relAt := make(map[relKey]ElemID)
	for id, el := range sg.elems {
		if el.Kind == RelEdge {
			relAt[relKey{el.Term, el.From, el.To}] = ElemID(id)
		}
	}

	// classes maps an entity to its class vertex elements under the new
	// graph, mirroring Build's classesOrThing against the old element set.
	classes := func(e store.ID) ([]ElemID, bool) {
		cs := newG.Classes(e)
		if len(cs) == 0 {
			return []ElemID{sg.thing}, true
		}
		out := make([]ElemID, 0, len(cs))
		for _, c := range cs {
			el, ok := sg.classOf[c]
			if !ok {
				// A class vertex Build would have to mint.
				return nil, false
			}
			out = append(out, el)
		}
		if len(out) == 0 {
			return []ElemID{sg.thing}, true
		}
		return out, true
	}

	// Pass 1: validate every gate and collect aggregation bumps; nothing
	// is mutated until the whole delta is known to be shape-preserving.
	bumps := make(map[ElemID]int)
	redgeAdd := 0
	for _, t := range delta {
		if subID != 0 && t.P == subID {
			return nil, false // subclass axiom: summary topology changes
		}
		if t.S <= oldTerms {
			// A write touching an existing subject can retype it or
			// interleave ahead of an old edge key's first occurrence.
			return nil, false
		}
		if typeID != 0 && t.P == typeID {
			if _, ok := sg.classOf[t.O]; !ok {
				return nil, false // typing against a class Build hasn't seen
			}
			continue
		}
		if t.O <= oldTerms && oldG.Kind(t.O) != newG.Kind(t.O) {
			return nil, false // an old term was reclassified by the delta
		}
		if newG.Kind(t.O) != graph.EVertex {
			continue // A-edges and irregular edges are outside Def. 4
		}
		froms, ok := classes(t.S)
		if !ok {
			return nil, false
		}
		tos, ok := classes(t.O)
		if !ok {
			return nil, false
		}
		redgeAdd++
		for _, from := range froms {
			for _, to := range tos {
				el, ok := relAt[relKey{t.P, from, to}]
				if !ok {
					return nil, false // a summary edge Build would mint
				}
				bumps[el]++
			}
		}
	}

	// New entities (fresh dictionary IDs classified E-vertex) join their
	// classes' aggregates, exactly as Build's entity pass would.
	entityAdd := 0
	for id := oldTerms + 1; id <= newTerms; id++ {
		if newG.Kind(id) != graph.EVertex {
			continue
		}
		entityAdd++
		cs, ok := classes(id)
		if !ok {
			return nil, false
		}
		for _, c := range cs {
			bumps[c]++
		}
	}

	// Pass 2: apply onto a copy of the element table. Adjacency, the
	// class map, and the per-predicate edge lists are identical by
	// construction and shared with the old summary.
	out := &Graph{
		data:        newG,
		elems:       append([]Element(nil), sg.elems...),
		nbrs:        sg.nbrs,
		classOf:     sg.classOf,
		thing:       sg.thing,
		relEdges:    sg.relEdges,
		entityTotal: sg.entityTotal + entityAdd,
		redgeTotal:  sg.redgeTotal + redgeAdd,
	}
	for el, n := range bumps {
		out.elems[el].Agg += n
	}
	return out, true
}
