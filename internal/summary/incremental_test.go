package summary

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/rdf"
	"repro/internal/store"
)

// equalSummaries compares two summaries structurally: element tables
// (IDs, kinds, terms, endpoints, aggregates), adjacency, class map,
// Thing, per-predicate edge lists, and the popularity totals.
func equalSummaries(t *testing.T, got, want *Graph) {
	t.Helper()
	if len(got.elems) != len(want.elems) {
		t.Fatalf("element count %d, want %d", len(got.elems), len(want.elems))
	}
	for i := range want.elems {
		if got.elems[i] != want.elems[i] {
			t.Fatalf("element %d: got %+v, want %+v", i, got.elems[i], want.elems[i])
		}
	}
	if len(got.nbrs) != len(want.nbrs) {
		t.Fatalf("adjacency length %d, want %d", len(got.nbrs), len(want.nbrs))
	}
	for i := range want.nbrs {
		if !reflect.DeepEqual(got.nbrs[i], want.nbrs[i]) {
			t.Fatalf("adjacency of %d: got %v, want %v", i, got.nbrs[i], want.nbrs[i])
		}
	}
	if !reflect.DeepEqual(got.classOf, want.classOf) {
		t.Fatalf("classOf: got %v, want %v", got.classOf, want.classOf)
	}
	if got.thing != want.thing {
		t.Fatalf("thing: got %d, want %d", got.thing, want.thing)
	}
	if !reflect.DeepEqual(got.relEdges, want.relEdges) {
		t.Fatalf("relEdges: got %v, want %v", got.relEdges, want.relEdges)
	}
	if got.entityTotal != want.entityTotal || got.redgeTotal != want.redgeTotal {
		t.Fatalf("totals: got (%d,%d), want (%d,%d)",
			got.entityTotal, got.redgeTotal, want.entityTotal, want.redgeTotal)
	}
}

// applyWorld runs one ApplyDelta round: base triples build the old
// world, delta triples go through a store.Delta, and the merged graph is
// classified fresh. Returns the incremental result (nil if the fast
// path bailed) and the from-scratch rebuild for comparison.
func applyWorld(t *testing.T, baseTs, deltaTs []rdf.Triple) (inc, rebuilt *Graph, ok bool) {
	t.Helper()
	base := store.New()
	base.AddAll(baseTs)
	base.Build()
	oldG := graph.Build(base)
	oldSum := Build(oldG)

	d := store.NewDelta(base)
	for _, tr := range deltaTs {
		d.Add(tr)
	}
	snap := d.Snapshot()
	merged := store.MergeDelta(base, snap)
	newG := graph.Build(merged)

	inc, ok = ApplyDelta(oldSum, newG, snap.Triples())
	return inc, Build(newG), ok
}

func pns(s string) rdf.Term { return rdf.NewIRI("http://prop/" + s) }

// fastPathDelta derives a delta guaranteed to stay on the incremental
// fast path: fresh subjects cloning the classes of existing subjects,
// relation edges along already-summarized combinations, attribute
// edges, and untyped fresh entities.
func fastPathDelta(rng *rand.Rand, g *graph.Graph, n int) []rdf.Triple {
	st := g.Store()
	var redges []store.IDTriple
	st.ForEach(func(tr store.IDTriple) {
		if g.TypeID() != 0 && tr.P == g.TypeID() {
			return
		}
		if g.Kind(tr.S) == graph.EVertex && g.Kind(tr.O) == graph.EVertex {
			redges = append(redges, tr)
		}
	})
	var out []rdf.Triple
	for i := 0; i < n; i++ {
		ns := rdf.NewIRI(fmt.Sprintf("http://prop/new%d_%d", rng.Int63(), i))
		switch {
		case len(redges) > 0 && rng.Intn(2) == 0:
			// Clone an existing R-edge's subject: same classes, same
			// predicate, same object — every summary key already exists.
			tr := redges[rng.Intn(len(redges))]
			for _, c := range g.Classes(tr.S) {
				out = append(out, rdf.NewTriple(ns, rdf.NewIRI(rdf.RDFType), st.Term(c)))
			}
			out = append(out, rdf.NewTriple(ns, st.Term(tr.P), st.Term(tr.O)))
		case rng.Intn(2) == 0:
			// A typed entity with an attribute (classes must exist).
			var classes []store.ID
			g.ForEachVertex(func(id store.ID, kind graph.VertexKind) {
				if kind == graph.CVertex {
					classes = append(classes, id)
				}
			})
			if len(classes) > 0 {
				out = append(out, rdf.NewTriple(ns, rdf.NewIRI(rdf.RDFType), st.Term(classes[rng.Intn(len(classes))])))
			}
			out = append(out, rdf.NewTriple(ns, pns("name"), rdf.NewLiteral(fmt.Sprintf("thing %d", i))))
		default:
			// An untyped entity with only attributes → Thing.
			out = append(out, rdf.NewTriple(ns, pns("note"), rdf.NewLiteral(fmt.Sprintf("note %d", i))))
		}
	}
	return out
}

// TestApplyDeltaEquivalence: whenever the fast path accepts a delta,
// the result must equal a from-scratch Build of the merged graph —
// including element IDs, which downstream candidate mapping depends on.
func TestApplyDeltaEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	accepted := 0
	for round := 0; round < 40; round++ {
		g := randomDataGraph(rng)
		var baseTs []rdf.Triple
		st := g.Store()
		st.ForEach(func(tr store.IDTriple) { baseTs = append(baseTs, st.Decode(tr)) })
		deltaTs := fastPathDelta(rng, g, 1+rng.Intn(8))

		inc, rebuilt, ok := applyWorld(t, baseTs, deltaTs)
		if !ok {
			t.Fatalf("round %d: fast-path delta rejected", round)
		}
		accepted++
		equalSummaries(t, inc, rebuilt)
	}
	if accepted == 0 {
		t.Fatal("no delta was accepted — the test exercised nothing")
	}
}

// TestApplyDeltaRandomAgreesWhenAccepted: arbitrary random deltas — if
// the gates accept one, equivalence must still hold; when they reject,
// that is always a safe answer.
func TestApplyDeltaRandomAgreesWhenAccepted(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	accepted := 0
	for round := 0; round < 60; round++ {
		g := randomDataGraph(rng)
		var baseTs []rdf.Triple
		st := g.Store()
		st.ForEach(func(tr store.IDTriple) { baseTs = append(baseTs, st.Decode(tr)) })

		// A mix of fresh and existing subjects/objects, types and axioms.
		var deltaTs []rdf.Triple
		mkTerm := func(fresh bool, i int) rdf.Term {
			if fresh {
				return rdf.NewIRI(fmt.Sprintf("http://prop/r%d_%d", round, i))
			}
			return pns("e" + itoa(rng.Intn(20)))
		}
		for i := 0; i < 1+rng.Intn(6); i++ {
			switch rng.Intn(4) {
			case 0:
				deltaTs = append(deltaTs, rdf.NewTriple(mkTerm(rng.Intn(2) == 0, i), rdf.NewIRI(rdf.RDFType), pns("C"+itoa(rng.Intn(6)))))
			case 1:
				deltaTs = append(deltaTs, rdf.NewTriple(pns("C"+itoa(rng.Intn(4))), rdf.NewIRI(rdf.RDFSSubClass), pns("C"+itoa(rng.Intn(4)))))
			case 2:
				deltaTs = append(deltaTs, rdf.NewTriple(mkTerm(rng.Intn(2) == 0, i), pns("p"+itoa(rng.Intn(4))), mkTerm(rng.Intn(3) == 0, i+100)))
			default:
				deltaTs = append(deltaTs, rdf.NewTriple(mkTerm(rng.Intn(2) == 0, i), pns("name"), rdf.NewLiteral("v"+itoa(i))))
			}
		}

		inc, rebuilt, ok := applyWorld(t, baseTs, deltaTs)
		if !ok {
			continue
		}
		accepted++
		equalSummaries(t, inc, rebuilt)
	}
	t.Logf("random deltas accepted on the fast path: %d/60", accepted)
}

// TestApplyDeltaRejectsShapeChanges: the canonical slow-path shapes must
// be detected.
func TestApplyDeltaRejectsShapeChanges(t *testing.T) {
	base := []rdf.Triple{
		rdf.NewTriple(pns("e1"), rdf.NewIRI(rdf.RDFType), pns("C1")),
		rdf.NewTriple(pns("e1"), pns("knows"), pns("e2")),
		rdf.NewTriple(pns("e2"), rdf.NewIRI(rdf.RDFType), pns("C1")),
		rdf.NewTriple(pns("e3"), rdf.NewIRI(rdf.RDFType), pns("C2")),
	}
	cases := []struct {
		name  string
		delta []rdf.Triple
	}{
		{"subclass axiom", []rdf.Triple{rdf.NewTriple(pns("C1"), rdf.NewIRI(rdf.RDFSSubClass), pns("C0"))}},
		{"new class", []rdf.Triple{rdf.NewTriple(pns("n1"), rdf.NewIRI(rdf.RDFType), pns("Cnew"))}},
		{"retype existing subject", []rdf.Triple{rdf.NewTriple(pns("e2"), rdf.NewIRI(rdf.RDFType), pns("C2"))}},
		{"old subject write", []rdf.Triple{rdf.NewTriple(pns("e1"), pns("name"), rdf.NewLiteral("x"))}},
		{"new rel-edge combination", []rdf.Triple{rdf.NewTriple(pns("n1"), pns("employs"), pns("e2"))}},
	}
	for _, tc := range cases {
		if _, _, ok := applyWorld(t, base, tc.delta); ok {
			t.Errorf("%s: accepted on the fast path, must rebuild", tc.name)
		}
	}
}

// TestApplyDeltaInvariants: the incremental result satisfies the same
// Definition 4 invariants the property test pins for Build.
func TestApplyDeltaInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for round := 0; round < 10; round++ {
		g := randomDataGraph(rng)
		var baseTs []rdf.Triple
		st := g.Store()
		st.ForEach(func(tr store.IDTriple) { baseTs = append(baseTs, st.Decode(tr)) })
		inc, _, ok := applyWorld(t, baseTs, fastPathDelta(rng, g, 5))
		if !ok {
			t.Fatalf("round %d: fast-path delta rejected", round)
		}
		newG := inc.Data()
		wantAgg := 0
		newG.ForEachVertex(func(id store.ID, kind graph.VertexKind) {
			if kind != graph.EVertex {
				return
			}
			if n := len(newG.Classes(id)); n == 0 {
				wantAgg++
			} else {
				wantAgg += n
			}
		})
		gotAgg := 0
		for i := 0; i < inc.NumElements(); i++ {
			if el := inc.Element(ElemID(i)); el.Kind == ClassVertex {
				gotAgg += el.Agg
			}
		}
		if gotAgg != wantAgg {
			t.Fatalf("round %d: class aggregates %d, want %d", round, gotAgg, wantAgg)
		}
	}
}
