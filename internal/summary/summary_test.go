package summary

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rdf"
	"repro/internal/store"
)

func buildFig1(t *testing.T) (*Graph, *store.Store) {
	t.Helper()
	st := store.New()
	st.AddAll(rdf.MustParseFig1())
	return Build(graph.Build(st)), st
}

func ex(local string) rdf.Term { return rdf.NewIRI(rdf.ExampleNS + local) }

func elemByClass(t *testing.T, sg *Graph, st *store.Store, local string) ElemID {
	t.Helper()
	id, ok := st.Lookup(ex(local))
	if !ok {
		t.Fatalf("class %s not interned", local)
	}
	el, ok := sg.ClassElem(id)
	if !ok {
		t.Fatalf("class %s has no summary vertex", local)
	}
	return el
}

func TestSummaryVertices(t *testing.T) {
	sg, st := buildFig1(t)
	// 7 classes + Thing.
	if sg.NumVertices() != 8 {
		t.Fatalf("NumVertices = %d, want 8", sg.NumVertices())
	}
	pub := elemByClass(t, sg, st, "Publication")
	if sg.Element(pub).Agg != 2 { // pub1, pub2
		t.Errorf("|vagg| of Publication = %d, want 2", sg.Element(pub).Agg)
	}
	res := elemByClass(t, sg, st, "Researcher")
	if sg.Element(res).Agg != 2 { // re1, re2
		t.Errorf("|vagg| of Researcher = %d, want 2", sg.Element(res).Agg)
	}
	if sg.Element(sg.Thing()).Agg != 0 {
		t.Errorf("Thing should aggregate no entities in Fig. 1, got %d", sg.Element(sg.Thing()).Agg)
	}
	if sg.EntityTotal() != 8 {
		t.Errorf("EntityTotal = %d, want 8", sg.EntityTotal())
	}
}

func TestSummaryRelEdges(t *testing.T) {
	sg, st := buildFig1(t)
	author, _ := st.Lookup(ex("author"))
	edges := sg.RelEdgesWithPredicate(author)
	// Both author edges go Publication → Researcher, so one summary edge.
	if len(edges) != 1 {
		t.Fatalf("author summary edges = %d, want 1", len(edges))
	}
	e := sg.Element(edges[0])
	if e.Agg != 2 {
		t.Errorf("|eagg| of author edge = %d, want 2", e.Agg)
	}
	if sg.Element(e.From).Term == 0 || sg.Label(sg.Element(e.From)) != "Publication" {
		t.Errorf("author edge From = %q, want Publication", sg.Label(sg.Element(e.From)))
	}
	if sg.Label(sg.Element(e.To)) != "Researcher" {
		t.Errorf("author edge To = %q, want Researcher", sg.Label(sg.Element(e.To)))
	}
	if sg.RelEdgeTotal() != 5 {
		t.Errorf("RelEdgeTotal = %d, want 5", sg.RelEdgeTotal())
	}
}

func TestSummarySubclassEdges(t *testing.T) {
	sg, st := buildFig1(t)
	n := 0
	for i := 0; i < sg.NumElements(); i++ {
		if sg.Element(ElemID(i)).Kind == SubclassEdge {
			n++
		}
	}
	if n != 4 {
		t.Fatalf("subclass edges = %d, want 4", n)
	}
	// Researcher --subclass--> Person must exist and be adjacent to both.
	res := elemByClass(t, sg, st, "Researcher")
	per := elemByClass(t, sg, st, "Person")
	found := false
	for _, nb := range sg.Neighbors(res) {
		el := sg.Element(nb)
		if el.Kind == SubclassEdge && el.From == res && el.To == per {
			found = true
		}
	}
	if !found {
		t.Error("Researcher↦Person subclass edge not adjacent to Researcher")
	}
}

// Every data-graph R-edge path must have an image in the summary graph
// (the paper: "for every path in the data graph, there is at least one
// path in the summary graph").
func TestSummaryPathSoundness(t *testing.T) {
	st := store.New()
	st.AddAll(rdf.MustParseFig1())
	g := graph.Build(st)
	sg := Build(g)
	st.ForEach(func(tr store.IDTriple) {
		if g.TypeID() != 0 && tr.P == g.TypeID() {
			return
		}
		if g.SubclassID() != 0 && tr.P == g.SubclassID() {
			return
		}
		if g.Kind(tr.S) != graph.EVertex || g.Kind(tr.O) != graph.EVertex {
			return
		}
		// There must be a summary edge with this predicate connecting a
		// class of S to a class of O.
		found := false
		for _, e := range sg.RelEdgesWithPredicate(tr.P) {
			el := sg.Element(e)
			if classHas(g, sg, el.From, tr.S) && classHas(g, sg, el.To, tr.O) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("R-edge %v has no summary image", st.Decode(tr))
		}
	})
}

func classHas(g *graph.Graph, sg *Graph, classElem ElemID, entity store.ID) bool {
	term := sg.Element(classElem).Term
	if term == 0 {
		return len(g.Classes(entity)) == 0
	}
	for _, c := range g.Classes(entity) {
		if c == term {
			return true
		}
	}
	return false
}

func TestUntypedEntitiesAggregateToThing(t *testing.T) {
	st := store.New()
	st.AddAll(rdf.MustParseFig1())
	st.Add(rdf.NewTriple(ex("ghost1"), ex("knows"), ex("ghost2")))
	sg := Build(graph.Build(st))
	if sg.Element(sg.Thing()).Agg != 2 {
		t.Fatalf("Thing |vagg| = %d, want 2", sg.Element(sg.Thing()).Agg)
	}
	knows, _ := sg.Data().Store().Lookup(ex("knows"))
	edges := sg.RelEdgesWithPredicate(knows)
	if len(edges) != 1 {
		t.Fatalf("knows edges = %d, want 1", len(edges))
	}
	e := sg.Element(edges[0])
	if e.From != sg.Thing() || e.To != sg.Thing() {
		t.Error("knows edge should loop on Thing")
	}
	// Loop adjacency: the edge must list Thing once, Thing must list the edge once.
	cnt := 0
	for _, nb := range sg.Neighbors(edges[0]) {
		if nb == sg.Thing() {
			cnt++
		}
	}
	if cnt != 1 {
		t.Errorf("loop edge lists Thing %d times, want 1", cnt)
	}
}

func TestAdjacencyIsSymmetric(t *testing.T) {
	sg, _ := buildFig1(t)
	for i := 0; i < sg.NumElements(); i++ {
		id := ElemID(i)
		for _, nb := range sg.Neighbors(id) {
			back := false
			for _, nb2 := range sg.Neighbors(nb) {
				if nb2 == id {
					back = true
				}
			}
			if !back {
				t.Fatalf("adjacency not symmetric: %d → %d", id, nb)
			}
		}
	}
}

func TestVertexNeighborsAreEdges(t *testing.T) {
	sg, _ := buildFig1(t)
	for i := 0; i < sg.NumElements(); i++ {
		el := sg.Element(ElemID(i))
		for _, nb := range sg.Neighbors(ElemID(i)) {
			nbEl := sg.Element(nb)
			if el.Kind.IsVertex() && nbEl.Kind.IsVertex() {
				t.Fatalf("vertex %d adjacent to vertex %d", i, nb)
			}
			if !el.Kind.IsVertex() && !nbEl.Kind.IsVertex() {
				t.Fatalf("edge %d adjacent to edge %d", i, nb)
			}
		}
	}
}

func TestAugmentValueMatch(t *testing.T) {
	sg, st := buildFig1(t)
	name, _ := st.Lookup(ex("name"))
	aifb, _ := st.Lookup(rdf.NewLiteral("AIFB"))
	instID, _ := st.Lookup(ex("Institute"))

	ag := sg.Augment([][]Match{{
		{Kind: MatchValue, Score: 0.9, Value: aifb, Pred: name, Classes: []store.ID{instID}},
	}})
	if len(ag.Seeds()) != 1 || len(ag.Seeds()[0]) != 1 {
		t.Fatalf("seeds: %+v", ag.Seeds())
	}
	seed := ag.Seeds()[0][0]
	if el := ag.Element(seed); el.Kind != ValueVertex || el.Term != aifb {
		t.Fatalf("seed element wrong: %+v", el)
	}
	if ag.MatchScore(seed) != 0.9 {
		t.Errorf("MatchScore = %v, want 0.9", ag.MatchScore(seed))
	}
	// The value vertex must be reachable from the Institute class via a
	// fresh attribute edge.
	inst := elemByClass(t, sg, st, "Institute")
	var attr ElemID = NoElem
	for _, nb := range ag.Neighbors(inst) {
		if ag.Element(nb).Kind == AttrEdge && ag.Element(nb).Term == name {
			attr = nb
		}
	}
	if attr == NoElem {
		t.Fatal("attribute edge not attached to Institute")
	}
	found := false
	for _, nb := range ag.Neighbors(attr) {
		if nb == seed {
			found = true
		}
	}
	if !found {
		t.Fatal("attribute edge not connected to value vertex")
	}
}

func TestAugmentAttrEdgeMatch(t *testing.T) {
	sg, st := buildFig1(t)
	year, _ := st.Lookup(ex("year"))
	pubID, _ := st.Lookup(ex("Publication"))
	ag := sg.Augment([][]Match{{
		{Kind: MatchAttrEdge, Score: 1, Pred: year, Classes: []store.ID{pubID}},
	}})
	seeds := ag.Seeds()[0]
	if len(seeds) != 1 {
		t.Fatalf("seeds = %v, want one attr-edge", seeds)
	}
	el := ag.Element(seeds[0])
	if el.Kind != AttrEdge || el.Term != year {
		t.Fatalf("seed should be the year attr-edge: %+v", el)
	}
	// Its To must be an artificial value node (Term 0).
	if v := ag.Element(el.To); v.Kind != ValueVertex || v.Term != 0 {
		t.Fatalf("attr edge target should be artificial value node: %+v", v)
	}
}

func TestAugmentClassAndRelEdgeMatch(t *testing.T) {
	sg, st := buildFig1(t)
	pubID, _ := st.Lookup(ex("Publication"))
	author, _ := st.Lookup(ex("author"))
	ag := sg.Augment([][]Match{
		{{Kind: MatchClass, Score: 1, Class: pubID}},
		{{Kind: MatchRelEdge, Score: 0.8, Pred: author}},
	})
	if len(ag.Seeds()[0]) != 1 {
		t.Fatalf("class seeds: %v", ag.Seeds()[0])
	}
	if got := ag.Element(ag.Seeds()[0][0]).Kind; got != ClassVertex {
		t.Fatalf("class seed kind = %v", got)
	}
	if len(ag.Seeds()[1]) != 1 {
		t.Fatalf("rel-edge seeds: %v", ag.Seeds()[1])
	}
	if got := ag.Element(ag.Seeds()[1][0]).Kind; got != RelEdge {
		t.Fatalf("rel seed kind = %v", got)
	}
}

func TestAugmentDeduplicatesSharedValueVertex(t *testing.T) {
	sg, st := buildFig1(t)
	name, _ := st.Lookup(ex("name"))
	aifb, _ := st.Lookup(rdf.NewLiteral("AIFB"))
	instID, _ := st.Lookup(ex("Institute"))
	m := Match{Kind: MatchValue, Score: 0.5, Value: aifb, Pred: name, Classes: []store.ID{instID}}
	// The same literal matched by two keywords must reuse one value vertex.
	ag := sg.Augment([][]Match{{m}, {m}})
	if ag.NumElements() != sg.NumElements()+2 { // 1 value vertex + 1 attr edge
		t.Fatalf("extra elements = %d, want 2", ag.NumElements()-sg.NumElements())
	}
	if ag.Seeds()[0][0] != ag.Seeds()[1][0] {
		t.Error("shared literal should map both keywords to the same element")
	}
}

func TestAugmentScoreKeepsMax(t *testing.T) {
	sg, st := buildFig1(t)
	pubID, _ := st.Lookup(ex("Publication"))
	ag := sg.Augment([][]Match{{
		{Kind: MatchClass, Score: 0.4, Class: pubID},
		{Kind: MatchClass, Score: 0.7, Class: pubID},
	}})
	if len(ag.Seeds()[0]) != 1 {
		t.Fatalf("duplicate seeds not merged: %v", ag.Seeds()[0])
	}
	if got := ag.MatchScore(ag.Seeds()[0][0]); got != 0.7 {
		t.Fatalf("MatchScore = %v, want max 0.7", got)
	}
}

func TestAugmentUnknownClassFallsBackToThing(t *testing.T) {
	sg, st := buildFig1(t)
	name, _ := st.Lookup(ex("name"))
	aifb, _ := st.Lookup(rdf.NewLiteral("AIFB"))
	ag := sg.Augment([][]Match{{
		{Kind: MatchValue, Score: 1, Value: aifb, Pred: name, Classes: nil},
	}})
	seed := ag.Seeds()[0][0]
	// The attr edge must hang off Thing.
	attr := ag.Neighbors(seed)[0]
	if ag.Element(attr).From != sg.Thing() {
		t.Fatal("untyped value match should attach to Thing")
	}
}
