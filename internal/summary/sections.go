package summary

import (
	"fmt"
	"unsafe"

	"repro/internal/graph"
	"repro/internal/snapfmt"
	"repro/internal/store"
)

// elemRec is the fixed on-disk record for one summary element.
type elemRec struct {
	Agg  int64
	Term uint32
	From int32
	To   int32
	Kind uint32
}

// sumMetaRec is the fixed snapshot header of a summary graph.
type sumMetaRec struct {
	NumElems    int64
	Thing       int64
	EntityTotal int64
	RedgeTotal  int64
	NbrsLen     int64
}

var (
	_ = [unsafe.Sizeof(elemRec{})]byte{} == [24]byte{}
	_ = [unsafe.Sizeof(sumMetaRec{})]byte{} == [40]byte{}
)

// WriteSections serializes the summary graph under the given group:
// the element table as fixed records and the element adjacency as one
// CSR section (offsets then flattened neighbour lists). The classOf
// and relEdges lookup maps are not written — they are keyed views of
// the element table and are re-derived in one pass over it at load
// (fixup over the class-level summary, not a rebuild from data).
func (sg *Graph) WriteSections(w *snapfmt.Writer, group uint32) error {
	n := len(sg.elems)
	recs := make([]elemRec, n)
	for i, el := range sg.elems {
		recs[i] = elemRec{
			Agg:  int64(el.Agg),
			Term: uint32(el.Term),
			From: int32(el.From),
			To:   int32(el.To),
			Kind: uint32(el.Kind),
		}
	}
	off := make([]int32, n+1)
	total := 0
	for i, ns := range sg.nbrs {
		off[i] = int32(total)
		total += len(ns)
	}
	off[n] = int32(total)
	flat := make([]ElemID, 0, total)
	for _, ns := range sg.nbrs {
		flat = append(flat, ns...)
	}

	meta := []sumMetaRec{{
		NumElems:    int64(n),
		Thing:       int64(sg.thing),
		EntityTotal: int64(sg.entityTotal),
		RedgeTotal:  int64(sg.redgeTotal),
		NbrsLen:     int64(total),
	}}
	if err := w.Add(snapfmt.SecSumMeta, group, snapfmt.AsBytes(meta)); err != nil {
		return err
	}
	if err := w.Add(snapfmt.SecSumElems, group, snapfmt.AsBytes(recs)); err != nil {
		return err
	}
	return w.Add(snapfmt.SecSumNbrs, group, snapfmt.AsBytes(off), snapfmt.AsBytes(flat))
}

// ReadSections fixes up a summary graph over an already-loaded data
// graph. Neighbour lists are slice headers into the mapped CSR data;
// the element table is materialized (it is the class-level summary —
// small by construction) along with the classOf/relEdges maps derived
// from it.
func ReadSections(r *snapfmt.Reader, group uint32, data *graph.Graph) (*Graph, error) {
	metaB, err := r.Section(snapfmt.SecSumMeta, group)
	if err != nil {
		return nil, err
	}
	metas, err := snapfmt.CastSlice[sumMetaRec](metaB)
	if err != nil || len(metas) != 1 {
		return nil, fmt.Errorf("summary: snapshot meta section malformed (%v, %d records)", err, len(metas))
	}
	m := metas[0]
	n := int(m.NumElems)

	recsB, err := r.Section(snapfmt.SecSumElems, group)
	if err != nil {
		return nil, err
	}
	recs, err := snapfmt.CastSlice[elemRec](recsB)
	if err != nil {
		return nil, err
	}
	if len(recs) != n {
		return nil, fmt.Errorf("summary: snapshot element table: want %d records, got %d", n, len(recs))
	}

	nbrsB, err := r.Section(snapfmt.SecSumNbrs, group)
	if err != nil {
		return nil, err
	}
	wantBytes := (n+1)*4 + int(m.NbrsLen)*4
	if len(nbrsB) != wantBytes {
		return nil, fmt.Errorf("summary: snapshot adjacency: want %d bytes, got %d", wantBytes, len(nbrsB))
	}
	off, err := snapfmt.CastSlice[int32](nbrsB[:(n+1)*4])
	if err != nil {
		return nil, err
	}
	flat, err := snapfmt.CastSlice[ElemID](nbrsB[(n+1)*4:])
	if err != nil {
		return nil, err
	}

	sg := &Graph{
		data:        data,
		elems:       make([]Element, n),
		nbrs:        make([][]ElemID, n),
		classOf:     make(map[store.ID]ElemID),
		relEdges:    make(map[store.ID][]ElemID),
		thing:       ElemID(m.Thing),
		entityTotal: int(m.EntityTotal),
		redgeTotal:  int(m.RedgeTotal),
	}
	for i, rec := range recs {
		el := Element{
			Kind: ElemKind(rec.Kind),
			Term: store.ID(rec.Term),
			From: ElemID(rec.From),
			To:   ElemID(rec.To),
			Agg:  int(rec.Agg),
		}
		sg.elems[i] = el
		lo, hi := off[i], off[i+1]
		if lo < 0 || hi < lo || int(hi) > len(flat) {
			return nil, fmt.Errorf("summary: snapshot adjacency offsets out of range at element %d", i)
		}
		sg.nbrs[i] = flat[lo:hi:hi]
		switch el.Kind {
		case ClassVertex:
			if el.Term != 0 {
				sg.classOf[el.Term] = ElemID(i)
			}
		case RelEdge:
			sg.relEdges[el.Term] = append(sg.relEdges[el.Term], ElemID(i))
		}
	}
	return sg, nil
}
