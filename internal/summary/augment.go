package summary

import (
	"repro/internal/parallel"
	"repro/internal/store"
)

// augmentParallelMin is the bonus-neighbor count below which the merged
// adjacency freeze stays serial: each merge is a two-slice append of a
// few dozen ElemIDs, so distributing fewer of them costs more in
// goroutine setup than it saves.
const augmentParallelMin = 64

// MatchKind says which category of graph element a keyword was mapped to
// by the keyword index (Sec. IV-A: keywords may refer to C-vertices,
// V-vertices, or edges — E-vertices are deliberately not indexed).
type MatchKind uint8

const (
	// MatchClass maps a keyword to a class (C-vertex).
	MatchClass MatchKind = iota
	// MatchValue maps a keyword to an attribute value (V-vertex); the
	// keyword index supplies the data structure
	// [V-vertex, A-edge, (C-vertex1..n)] of Sec. IV-A.
	MatchValue
	// MatchAttrEdge maps a keyword to an attribute predicate (A-edge);
	// the index supplies [A-edge, (C-vertex1..n)].
	MatchAttrEdge
	// MatchRelEdge maps a keyword to a relation predicate (R-edge).
	MatchRelEdge
)

// Match is one keyword-to-element mapping result, the unit the augmented
// summary graph is built from (Definition 5).
type Match struct {
	Kind MatchKind
	// Score is the matching score sm(n) ∈ (0,1] of Sec. V.
	Score float64
	// Value is the literal's dictionary ID (MatchValue only).
	Value store.ID
	// Pred is the predicate ID (MatchValue: the A-edge to the value;
	// MatchAttrEdge/MatchRelEdge: the matched predicate itself).
	Pred store.ID
	// Class is the class ID (MatchClass only).
	Class store.ID
	// Classes are the classes of the entities owning the matched value or
	// attribute (MatchValue/MatchAttrEdge); empty means untyped → Thing.
	Classes []store.ID
}

// Augmented is the query-time summary graph G'_K of Definition 5: the base
// graph plus value vertices and attribute edges for keyword matches, plus
// per-element matching scores. It is cheap to construct (the base graph is
// shared, not copied) and discarded after query computation.
type Augmented struct {
	Base *Graph

	extra     []Element           // augmentation elements; ID = base count + index
	extraNbrs [][]ElemID          // adjacency of extra elements
	bonusNbrs map[ElemID][]ElemID // additional neighbors of base elements

	// merged holds, for every base element with bonus neighbors, its full
	// (base + bonus) adjacency, precomputed once at Augment time so the
	// exploration's per-pop Neighbors call never merges (and never
	// allocates) on the hot path.
	merged map[ElemID][]ElemID

	// scores is sm(n) for keyword-matching elements, dense over ElemID
	// (0 = not a keyword element → score 1). Dense indexing keeps the
	// per-cursor MatchScore lookup of the C3 cost function off the map.
	scores []float64

	// seeds[i] holds the keyword elements K_i for keyword i.
	seeds [][]ElemID
}

// Augment builds the augmented summary graph for one query: perKeyword
// holds, for each query keyword, the element matches produced by the
// keyword index. The per-keyword seed sets K_i preserve input order.
func (sg *Graph) Augment(perKeyword [][]Match) *Augmented {
	return sg.AugmentWorkers(perKeyword, 1)
}

// AugmentWorkers is Augment with the merged-adjacency freeze fanned out
// over at most the given number of goroutines (≤ 0 = one per CPU; the
// engine threads its intra-query Parallelism cap through here). Only that
// fold parallelizes: the match-folding loop itself must stay sequential
// because augmentation ElemIDs are assigned in encounter order, and that
// order is part of the result contract (it breaks exploration cost ties).
// The output is identical for every worker count.
func (sg *Graph) AugmentWorkers(perKeyword [][]Match, workers int) *Augmented {
	ag := &Augmented{
		Base:      sg,
		bonusNbrs: make(map[ElemID][]ElemID),
		seeds:     make([][]ElemID, len(perKeyword)),
	}
	// Dedup maps for augmentation elements.
	valueVerts := map[store.ID]ElemID{} // literal ID → value vertex
	artificial := map[store.ID]ElemID{} // A-edge predicate → artificial value vertex
	type aeKey struct {
		pred  store.ID
		class ElemID
		value ElemID
	}
	attrEdges := map[aeKey]ElemID{}

	addAttrEdge := func(pred store.ID, class, value ElemID) ElemID {
		k := aeKey{pred, class, value}
		if e, ok := attrEdges[k]; ok {
			return e
		}
		e := ag.addExtra(Element{Kind: AttrEdge, Term: pred, From: class, To: value, Agg: 1})
		attrEdges[k] = e
		ag.connect(e, class)
		ag.connect(e, value)
		return e
	}

	for i, matches := range perKeyword {
		for _, m := range matches {
			switch m.Kind {
			case MatchClass:
				if el, ok := sg.ClassElem(m.Class); ok {
					ag.addSeed(i, el, m.Score)
				}
			case MatchRelEdge:
				for _, el := range sg.RelEdgesWithPredicate(m.Pred) {
					ag.addSeed(i, el, m.Score)
				}
			case MatchValue:
				v, ok := valueVerts[m.Value]
				if !ok {
					v = ag.addExtra(Element{Kind: ValueVertex, Term: m.Value, From: NoElem, To: NoElem, Agg: 1})
					valueVerts[m.Value] = v
				}
				for _, c := range ag.classElems(m.Classes) {
					addAttrEdge(m.Pred, c, v)
				}
				ag.addSeed(i, v, m.Score)
			case MatchAttrEdge:
				v, ok := artificial[m.Pred]
				if !ok {
					v = ag.addExtra(Element{Kind: ValueVertex, Term: 0, From: NoElem, To: NoElem, Agg: 1})
					artificial[m.Pred] = v
				}
				for _, c := range ag.classElems(m.Classes) {
					e := addAttrEdge(m.Pred, c, v)
					ag.addSeed(i, e, m.Score)
				}
			}
		}
	}
	// Freeze the merged adjacency of base elements that gained bonus
	// neighbors: one slice built per touched element, instead of one per
	// Neighbors call during exploration. The merges are independent, so
	// they fan out across the worker cap; only the map writes (which
	// would race) stay on the caller. Typical queries touch a few dozen
	// elements — less work than a fork-join setup costs — so the fan-out
	// only engages past a threshold (keyword bursts on dense schemas).
	if len(ag.bonusNbrs) > 0 {
		ag.merged = make(map[ElemID][]ElemID, len(ag.bonusNbrs))
		if w := parallel.Workers(workers); w > 1 && len(ag.bonusNbrs) >= augmentParallelMin {
			ids := make([]ElemID, 0, len(ag.bonusNbrs))
			for id := range ag.bonusNbrs {
				ids = append(ids, id)
			}
			outs := make([][]ElemID, len(ids))
			parallel.ForEach(w, len(ids), func(i int) {
				id := ids[i]
				bonus := ag.bonusNbrs[id]
				base := sg.nbrs[id]
				out := make([]ElemID, 0, len(base)+len(bonus))
				out = append(out, base...)
				out = append(out, bonus...)
				outs[i] = out
			})
			for i, id := range ids {
				ag.merged[id] = outs[i]
			}
		} else {
			for id, bonus := range ag.bonusNbrs {
				base := sg.nbrs[id]
				out := make([]ElemID, 0, len(base)+len(bonus))
				out = append(out, base...)
				out = append(out, bonus...)
				ag.merged[id] = out
			}
		}
	}
	return ag
}

// classElems resolves class terms to vertex elements, defaulting to Thing.
func (ag *Augmented) classElems(classes []store.ID) []ElemID {
	if len(classes) == 0 {
		return []ElemID{ag.Base.Thing()}
	}
	var out []ElemID
	for _, c := range classes {
		if el, ok := ag.Base.ClassElem(c); ok {
			out = append(out, el)
		}
	}
	if len(out) == 0 {
		return []ElemID{ag.Base.Thing()}
	}
	return out
}

func (ag *Augmented) addExtra(el Element) ElemID {
	id := ElemID(len(ag.Base.elems) + len(ag.extra))
	ag.extra = append(ag.extra, el)
	ag.extraNbrs = append(ag.extraNbrs, nil)
	return id
}

// connect adds an undirected adjacency between an extra element and any
// element (base or extra).
func (ag *Augmented) connect(extra, other ElemID) {
	ag.extraNbrs[ag.extraIdx(extra)] = append(ag.extraNbrs[ag.extraIdx(extra)], other)
	if ag.isExtra(other) {
		ag.extraNbrs[ag.extraIdx(other)] = append(ag.extraNbrs[ag.extraIdx(other)], extra)
	} else {
		ag.bonusNbrs[other] = append(ag.bonusNbrs[other], extra)
	}
}

func (ag *Augmented) isExtra(id ElemID) bool { return int(id) >= len(ag.Base.elems) }
func (ag *Augmented) extraIdx(id ElemID) int { return int(id) - len(ag.Base.elems) }

// addSeed records element el as a keyword element for keyword i with
// matching score sm. If the element matched before with a lower score,
// the higher score wins.
func (ag *Augmented) addSeed(i int, el ElemID, sm float64) {
	for _, s := range ag.seeds[i] {
		if s == el {
			ag.setScore(el, sm)
			return
		}
	}
	ag.seeds[i] = append(ag.seeds[i], el)
	ag.setScore(el, sm)
}

// setScore folds a matching score into the dense score table, growing it
// to cover augmentation elements created since the last seed.
func (ag *Augmented) setScore(el ElemID, sm float64) {
	if int(el) >= len(ag.scores) {
		ns := make([]float64, ag.NumElements())
		copy(ns, ag.scores)
		ag.scores = ns
	}
	if sm > ag.scores[el] {
		ag.scores[el] = sm
	}
}

// NumElements returns the element count of the augmented graph (base plus
// augmentation).
func (ag *Augmented) NumElements() int { return len(ag.Base.elems) + len(ag.extra) }

// Element returns any element by ID (base or augmentation).
func (ag *Augmented) Element(id ElemID) Element {
	if ag.isExtra(id) {
		return ag.extra[ag.extraIdx(id)]
	}
	return ag.Base.elems[id]
}

// Neighbors returns the adjacency of id in the augmented graph. The
// returned slice must not be modified. It never allocates: merged
// base+bonus adjacency is precomputed at Augment time.
func (ag *Augmented) Neighbors(id ElemID) []ElemID {
	if ag.isExtra(id) {
		return ag.extraNbrs[ag.extraIdx(id)]
	}
	if ag.merged != nil {
		if out, ok := ag.merged[id]; ok {
			return out
		}
	}
	return ag.Base.nbrs[id]
}

// Seeds returns the per-keyword element sets K_1..K_m.
func (ag *Augmented) Seeds() [][]ElemID { return ag.seeds }

// MatchScore returns sm(n): the matching score for keyword elements and
// 1 for all other elements (Sec. V). The dense-slice lookup keeps this
// call cheap on the exploration hot path (it runs once per created cursor
// under the C3 cost function).
func (ag *Augmented) MatchScore(id ElemID) float64 {
	if int(id) < len(ag.scores) {
		if s := ag.scores[id]; s > 0 {
			return s
		}
	}
	return 1
}

// Label renders an element's label (delegates to the base graph).
func (ag *Augmented) Label(id ElemID) string { return ag.Base.Label(ag.Element(id)) }
