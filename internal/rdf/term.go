// Package rdf provides the RDF data model used throughout the repository:
// terms (IRIs, literals, blank nodes), triples, and parsers/serializers for
// the N-Triples format and a practical subset of Turtle.
//
// The model follows the paper's Definition 1: a data graph is a set of
// triples whose subjects are entities or classes, whose predicates are edge
// labels, and whose objects are entities, classes, or data values. Vertex
// and edge classification on top of triples lives in package graph.
package rdf

import (
	"fmt"
	"strings"
)

// Well-known vocabulary IRIs. The paper's two predefined edge labels, type
// and subclass, correspond to rdf:type and rdfs:subClassOf.
const (
	RDFType      = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	RDFSSubClass = "http://www.w3.org/2000/01/rdf-schema#subClassOf"
	RDFSLabel    = "http://www.w3.org/2000/01/rdf-schema#label"
	XSDString    = "http://www.w3.org/2001/XMLSchema#string"
	XSDInteger   = "http://www.w3.org/2001/XMLSchema#integer"
	XSDDecimal   = "http://www.w3.org/2001/XMLSchema#decimal"
	XSDDouble    = "http://www.w3.org/2001/XMLSchema#double"
	XSDBoolean   = "http://www.w3.org/2001/XMLSchema#boolean"
	XSDDate      = "http://www.w3.org/2001/XMLSchema#date"
	XSDGYear     = "http://www.w3.org/2001/XMLSchema#gYear"
)

// Kind discriminates the three syntactic categories of RDF terms.
type Kind uint8

const (
	// IRI identifies a resource (entity, class, or property).
	IRI Kind = iota
	// Literal is a data value with an optional datatype or language tag.
	Literal
	// Blank is a blank node with a document-scoped label.
	Blank
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case IRI:
		return "IRI"
	case Literal:
		return "Literal"
	case Blank:
		return "Blank"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Term is an RDF term. The zero value is an IRI with an empty value, which
// is never produced by the parsers and can serve as a sentinel.
type Term struct {
	// Kind selects which syntactic category the term belongs to.
	Kind Kind
	// Value holds the IRI string, the literal lexical form, or the blank
	// node label (without the "_:" prefix), depending on Kind.
	Value string
	// Datatype is the datatype IRI for typed literals. Empty means
	// xsd:string (or a language-tagged string when Lang is set).
	Datatype string
	// Lang is the language tag for language-tagged literals.
	Lang string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewLiteral returns a plain string literal.
func NewLiteral(lex string) Term { return Term{Kind: Literal, Value: lex} }

// NewTypedLiteral returns a literal with an explicit datatype IRI.
func NewTypedLiteral(lex, datatype string) Term {
	if datatype == XSDString {
		datatype = ""
	}
	return Term{Kind: Literal, Value: lex, Datatype: datatype}
}

// NewLangLiteral returns a language-tagged string literal.
func NewLangLiteral(lex, lang string) Term {
	return Term{Kind: Literal, Value: lex, Lang: strings.ToLower(lang)}
}

// NewBlank returns a blank node with the given label (no "_:" prefix).
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == Blank }

// IsZero reports whether the term is the zero value (empty IRI).
func (t Term) IsZero() bool { return t.Kind == IRI && t.Value == "" }

// Equal reports whether two terms are identical.
func (t Term) Equal(o Term) bool { return t == o }

// Compare orders terms: IRIs < Literals < Blanks, then by value, datatype,
// and language. It returns -1, 0, or +1.
func (t Term) Compare(o Term) int {
	if t.Kind != o.Kind {
		if t.Kind < o.Kind {
			return -1
		}
		return 1
	}
	if c := strings.Compare(t.Value, o.Value); c != 0 {
		return c
	}
	if c := strings.Compare(t.Datatype, o.Datatype); c != 0 {
		return c
	}
	return strings.Compare(t.Lang, o.Lang)
}

// LocalName returns the fragment or last path segment of an IRI, which is
// the human-readable portion used for labels when no rdfs:label is present.
// For non-IRI terms it returns the value unchanged.
func (t Term) LocalName() string {
	if t.Kind != IRI {
		return t.Value
	}
	v := t.Value
	if i := strings.LastIndexByte(v, '#'); i >= 0 && i+1 < len(v) {
		return v[i+1:]
	}
	if i := strings.LastIndexByte(v, '/'); i >= 0 && i+1 < len(v) {
		return v[i+1:]
	}
	if i := strings.LastIndexByte(v, ':'); i >= 0 && i+1 < len(v) {
		return v[i+1:]
	}
	return v
}

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	var b strings.Builder
	t.write(&b)
	return b.String()
}

func (t Term) write(b *strings.Builder) {
	switch t.Kind {
	case IRI:
		b.WriteByte('<')
		escapeIRI(b, t.Value)
		b.WriteByte('>')
	case Blank:
		b.WriteString("_:")
		b.WriteString(t.Value)
	case Literal:
		b.WriteByte('"')
		escapeLiteral(b, t.Value)
		b.WriteByte('"')
		switch {
		case t.Lang != "":
			b.WriteByte('@')
			b.WriteString(t.Lang)
		case t.Datatype != "":
			b.WriteString("^^<")
			escapeIRI(b, t.Datatype)
			b.WriteByte('>')
		}
	}
}

// escapeIRI writes an IRI value with every character the IRIREF
// production forbids (controls, space, <>"{}|^`\) as a \u escape, so
// any parsed IRI — however exotic — re-serializes to a line the parser
// accepts and decodes back to the same value.
func escapeIRI(b *strings.Builder, s string) {
	for _, r := range s {
		switch {
		case r <= 0x20, r == '<', r == '>', r == '"',
			r == '{', r == '}', r == '|', r == '^', r == '`', r == '\\':
			fmt.Fprintf(b, `\u%04X`, r)
		default:
			b.WriteRune(r)
		}
	}
}

func escapeLiteral(b *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
}

// Triple is a single RDF statement.
type Triple struct {
	S, P, O Term
}

// NewTriple builds a triple from its three terms.
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple as one N-Triples line (including the dot).
func (t Triple) String() string {
	var b strings.Builder
	t.S.write(&b)
	b.WriteByte(' ')
	t.P.write(&b)
	b.WriteByte(' ')
	t.O.write(&b)
	b.WriteString(" .")
	return b.String()
}

// Compare orders triples lexicographically by subject, predicate, object.
func (t Triple) Compare(o Triple) int {
	if c := t.S.Compare(o.S); c != 0 {
		return c
	}
	if c := t.P.Compare(o.P); c != 0 {
		return c
	}
	return t.O.Compare(o.O)
}
