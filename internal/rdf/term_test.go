package rdf

import (
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	iri := NewIRI("http://example.org/a")
	if !iri.IsIRI() || iri.IsLiteral() || iri.IsBlank() {
		t.Fatalf("IRI kind predicates wrong: %+v", iri)
	}
	lit := NewLiteral("hello")
	if !lit.IsLiteral() {
		t.Fatalf("literal kind predicate wrong: %+v", lit)
	}
	if lit.Datatype != "" || lit.Lang != "" {
		t.Fatalf("plain literal should have no datatype/lang: %+v", lit)
	}
	bl := NewBlank("b1")
	if !bl.IsBlank() {
		t.Fatalf("blank kind predicate wrong: %+v", bl)
	}
}

func TestTypedLiteralNormalizesXSDString(t *testing.T) {
	lit := NewTypedLiteral("x", XSDString)
	if lit.Datatype != "" {
		t.Fatalf("xsd:string datatype should normalize to empty, got %q", lit.Datatype)
	}
	lit2 := NewTypedLiteral("5", XSDInteger)
	if lit2.Datatype != XSDInteger {
		t.Fatalf("integer datatype lost: %+v", lit2)
	}
}

func TestLangLiteralLowercasesTag(t *testing.T) {
	lit := NewLangLiteral("Hallo", "DE")
	if lit.Lang != "de" {
		t.Fatalf("lang tag not lowercased: %q", lit.Lang)
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://x/y"), "<http://x/y>"},
		{NewLiteral("plain"), `"plain"`},
		{NewLiteral(`quo"te`), `"quo\"te"`},
		{NewLiteral("tab\there"), `"tab\there"`},
		{NewLiteral("new\nline"), `"new\nline"`},
		{NewLangLiteral("hi", "en"), `"hi"@en`},
		{NewTypedLiteral("5", XSDInteger), `"5"^^<` + XSDInteger + `>`},
		{NewBlank("n1"), "_:n1"},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.term, got, c.want)
		}
	}
}

func TestLocalName(t *testing.T) {
	cases := []struct{ iri, want string }{
		{"http://example.org/ns#Person", "Person"},
		{"http://example.org/people/alice", "alice"},
		{"urn:isbn:12345", "12345"},
		{"noseparator", "noseparator"},
	}
	for _, c := range cases {
		if got := NewIRI(c.iri).LocalName(); got != c.want {
			t.Errorf("LocalName(%q) = %q, want %q", c.iri, got, c.want)
		}
	}
	if got := NewLiteral("value").LocalName(); got != "value" {
		t.Errorf("LocalName on literal = %q, want value", got)
	}
}

func TestCompareOrdering(t *testing.T) {
	a := NewIRI("a")
	b := NewIRI("b")
	l := NewLiteral("a")
	bl := NewBlank("a")
	if a.Compare(b) >= 0 || b.Compare(a) <= 0 || a.Compare(a) != 0 {
		t.Fatal("IRI comparison broken")
	}
	if a.Compare(l) >= 0 {
		t.Fatal("IRIs must sort before literals")
	}
	if l.Compare(bl) >= 0 {
		t.Fatal("literals must sort before blanks")
	}
}

func TestCompareIsAntisymmetric(t *testing.T) {
	f := func(av, bv string, ak, bk uint8) bool {
		a := Term{Kind: Kind(ak % 3), Value: av}
		b := Term{Kind: Kind(bk % 3), Value: bv}
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTripleString(t *testing.T) {
	tr := NewTriple(NewIRI("http://x/s"), NewIRI("http://x/p"), NewLiteral("o"))
	want := `<http://x/s> <http://x/p> "o" .`
	if got := tr.String(); got != want {
		t.Fatalf("Triple.String() = %q, want %q", got, want)
	}
}

func TestTripleCompare(t *testing.T) {
	t1 := NewTriple(NewIRI("a"), NewIRI("p"), NewIRI("x"))
	t2 := NewTriple(NewIRI("a"), NewIRI("p"), NewIRI("y"))
	t3 := NewTriple(NewIRI("b"), NewIRI("p"), NewIRI("x"))
	if t1.Compare(t2) >= 0 || t1.Compare(t3) >= 0 || t1.Compare(t1) != 0 {
		t.Fatal("triple ordering broken")
	}
}
