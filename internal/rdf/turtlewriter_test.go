package rdf

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

func TestTurtleWriterRoundTrip(t *testing.T) {
	orig := MustParseFig1()
	var buf bytes.Buffer
	err := WriteTurtle(&buf, orig, map[string]string{
		"ex":   ExampleNS,
		"rdfs": "http://www.w3.org/2000/01/rdf-schema#",
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseTurtle(buf.String())
	if err != nil {
		t.Fatalf("reparse failed: %v\ndoc:\n%s", err, buf.String())
	}
	if !sameTripleSet(orig, back) {
		t.Fatalf("round trip changed the triple set:\n%s", buf.String())
	}
}

func TestTurtleWriterUsesAbbreviations(t *testing.T) {
	var buf bytes.Buffer
	err := WriteTurtle(&buf, MustParseFig1(), map[string]string{"ex": ExampleNS})
	if err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	if !strings.Contains(doc, "@prefix ex: <"+ExampleNS+"> .") {
		t.Error("missing @prefix directive")
	}
	if !strings.Contains(doc, "ex:pub1 a ex:Publication") {
		t.Errorf("expected 'a' keyword and prefixed names:\n%s", doc)
	}
	if !strings.Contains(doc, " ;\n") {
		t.Error("expected predicate-list grouping")
	}
	if strings.Contains(doc, "<"+ExampleNS+"pub1>") {
		t.Error("subject not abbreviated")
	}
}

func TestTurtleWriterEscapesAndLiterals(t *testing.T) {
	ts := []Triple{
		NewTriple(NewIRI("http://x/s"), NewIRI("http://x/p"), NewLiteral("line\nbreak \"q\"")),
		NewTriple(NewIRI("http://x/s"), NewIRI("http://x/p"), NewLangLiteral("hé", "fr")),
		NewTriple(NewIRI("http://x/s"), NewIRI("http://x/p"), NewTypedLiteral("3", XSDInteger)),
		NewTriple(NewBlank("n0"), NewIRI("http://x/p"), NewIRI("http://x/o")),
	}
	var buf bytes.Buffer
	if err := WriteTurtle(&buf, ts, nil); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTurtle(buf.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if !sameTripleSet(ts, back) {
		t.Fatalf("round trip mismatch:\n%s", buf.String())
	}
}

func TestTurtleWriterEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTurtle(&buf, nil, map[string]string{"ex": ExampleNS}); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseTurtle(buf.String()); err != nil {
		t.Fatalf("empty document should parse: %v", err)
	}
}

func TestTurtleWriterUnsafeLocalFallsBack(t *testing.T) {
	ts := []Triple{
		// Local name with a slash cannot be a safe prefixed name.
		NewTriple(NewIRI(ExampleNS+"a/b"), NewIRI(ExampleNS+"p"), NewIRI(ExampleNS+"o")),
	}
	var buf bytes.Buffer
	if err := WriteTurtle(&buf, ts, map[string]string{"ex": ExampleNS}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<"+ExampleNS+"a/b>") {
		t.Errorf("unsafe local should use full IRI:\n%s", buf.String())
	}
	back, err := ParseTurtle(buf.String())
	if err != nil || !sameTripleSet(ts, back) {
		t.Fatalf("round trip: %v\n%s", err, buf.String())
	}
}

func sameTripleSet(a, b []Triple) bool {
	key := func(ts []Triple) []string {
		out := make([]string, len(ts))
		for i, t := range ts {
			out[i] = t.String()
		}
		sort.Strings(out)
		return out
	}
	ka, kb := key(a), key(b)
	if len(ka) != len(kb) {
		return false
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}
