package rdf

import (
	"fmt"
	"io"
	"strings"
	"unicode"
	"unicode/utf8"
)

// TurtleParser parses a practical subset of the Turtle language:
//
//   - @prefix / PREFIX and @base / BASE directives
//   - IRIs, prefixed names, and the "a" keyword
//   - predicate-object lists (";") and object lists (",")
//   - blank node labels (_:x) and anonymous blank nodes ("[ ... ]")
//   - string literals (single/double quoted, long triple-quoted forms),
//     language tags and datatype annotations
//   - numeric literals (integer, decimal, double) and booleans
//
// RDF collections "( ... )" are expanded to the standard
// rdf:first/rdf:rest/rdf:nil list encoding.
type TurtleParser struct {
	src      string
	pos      int
	line     int
	col      int
	base     string
	prefixes map[string]string
	bnodeSeq int
}

const (
	rdfFirst = "http://www.w3.org/1999/02/22-rdf-syntax-ns#first"
	rdfRest  = "http://www.w3.org/1999/02/22-rdf-syntax-ns#rest"
	rdfNil   = "http://www.w3.org/1999/02/22-rdf-syntax-ns#nil"
)

// NewTurtleParser reads all of r and prepares a parser over its contents.
func NewTurtleParser(r io.Reader) (*TurtleParser, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return &TurtleParser{src: string(data), line: 1, col: 1, prefixes: map[string]string{}}, nil
}

// ParseTurtle parses a Turtle document held in a string.
func ParseTurtle(s string) ([]Triple, error) {
	p := &TurtleParser{src: s, line: 1, col: 1, prefixes: map[string]string{}}
	return p.ParseAll()
}

// ParseAll parses the whole document and returns its triples.
func (p *TurtleParser) ParseAll() ([]Triple, error) {
	var out []Triple
	err := p.Parse(func(t Triple) error {
		out = append(out, t)
		return nil
	})
	return out, err
}

// Parse parses the document, invoking emit for every triple produced.
func (p *TurtleParser) Parse(emit func(Triple) error) error {
	for {
		p.skipWS()
		if p.eof() {
			return nil
		}
		if err := p.parseStatement(emit); err != nil {
			return err
		}
	}
}

func (p *TurtleParser) errf(format string, args ...interface{}) error {
	return &ParseError{Line: p.line, Col: p.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *TurtleParser) eof() bool { return p.pos >= len(p.src) }

func (p *TurtleParser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *TurtleParser) peekAt(off int) byte {
	if p.pos+off >= len(p.src) {
		return 0
	}
	return p.src[p.pos+off]
}

func (p *TurtleParser) advance() byte {
	c := p.src[p.pos]
	p.pos++
	if c == '\n' {
		p.line++
		p.col = 1
	} else {
		p.col++
	}
	return c
}

func (p *TurtleParser) skipWS() {
	for !p.eof() {
		c := p.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			p.advance()
		case c == '#':
			for !p.eof() && p.peek() != '\n' {
				p.advance()
			}
		default:
			return
		}
	}
}

func (p *TurtleParser) hasKeyword(kw string) bool {
	if p.pos+len(kw) > len(p.src) {
		return false
	}
	if !strings.EqualFold(p.src[p.pos:p.pos+len(kw)], kw) {
		return false
	}
	// Keyword must be followed by whitespace or a term opener.
	c := p.peekAt(len(kw))
	return c == 0 || c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '<'
}

func (p *TurtleParser) consume(n int) {
	for i := 0; i < n; i++ {
		p.advance()
	}
}

func (p *TurtleParser) expect(c byte) error {
	if p.eof() || p.peek() != c {
		return p.errf("expected %q", string(c))
	}
	p.advance()
	return nil
}

func (p *TurtleParser) parseStatement(emit func(Triple) error) error {
	switch {
	case p.peek() == '@':
		return p.parseAtDirective()
	case p.hasKeyword("PREFIX"):
		p.consume(len("PREFIX"))
		return p.parsePrefixBody(false)
	case p.hasKeyword("BASE"):
		p.consume(len("BASE"))
		return p.parseBaseBody(false)
	default:
		return p.parseTriples(emit)
	}
}

func (p *TurtleParser) parseAtDirective() error {
	p.advance() // '@'
	switch {
	case strings.HasPrefix(p.src[p.pos:], "prefix"):
		p.consume(len("prefix"))
		return p.parsePrefixBody(true)
	case strings.HasPrefix(p.src[p.pos:], "base"):
		p.consume(len("base"))
		return p.parseBaseBody(true)
	default:
		return p.errf("unknown directive")
	}
}

func (p *TurtleParser) parsePrefixBody(dotTerminated bool) error {
	p.skipWS()
	start := p.pos
	for !p.eof() && p.peek() != ':' {
		if c := p.peek(); c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			return p.errf("malformed prefix name")
		}
		p.advance()
	}
	name := p.src[start:p.pos]
	if err := p.expect(':'); err != nil {
		return err
	}
	p.skipWS()
	iri, err := p.parseIRIRef()
	if err != nil {
		return err
	}
	p.prefixes[name] = iri.Value
	if dotTerminated {
		p.skipWS()
		return p.expect('.')
	}
	return nil
}

func (p *TurtleParser) parseBaseBody(dotTerminated bool) error {
	p.skipWS()
	iri, err := p.parseIRIRef()
	if err != nil {
		return err
	}
	p.base = iri.Value
	if dotTerminated {
		p.skipWS()
		return p.expect('.')
	}
	return nil
}

func (p *TurtleParser) parseTriples(emit func(Triple) error) error {
	var subj Term
	var err error
	if p.peek() == '[' {
		subj, err = p.parseBlankNodePropertyList(emit)
		if err != nil {
			return err
		}
		p.skipWS()
		// A bare "[ ... ] ." statement is legal; a predicate list may follow.
		if p.peek() == '.' {
			p.advance()
			return nil
		}
	} else {
		subj, err = p.parseSubject(emit)
		if err != nil {
			return err
		}
	}
	if err := p.parsePredicateObjectList(subj, emit); err != nil {
		return err
	}
	p.skipWS()
	return p.expect('.')
}

func (p *TurtleParser) parseSubject(emit func(Triple) error) (Term, error) {
	p.skipWS()
	switch {
	case p.eof():
		return Term{}, p.errf("unexpected end of input, expected subject")
	case p.peek() == '<':
		return p.parseIRIRef()
	case p.peek() == '_':
		return p.parseBlankLabel()
	case p.peek() == '(':
		return p.parseCollection(emit)
	default:
		return p.parsePrefixedName()
	}
}

func (p *TurtleParser) parsePredicateObjectList(subj Term, emit func(Triple) error) error {
	for {
		p.skipWS()
		pred, err := p.parsePredicate()
		if err != nil {
			return err
		}
		if err := p.parseObjectList(subj, pred, emit); err != nil {
			return err
		}
		p.skipWS()
		if p.peek() != ';' {
			return nil
		}
		p.advance()
		p.skipWS()
		// Turtle allows trailing semicolons before '.' or ']'.
		if c := p.peek(); c == '.' || c == ']' {
			return nil
		}
	}
}

func (p *TurtleParser) parsePredicate() (Term, error) {
	p.skipWS()
	if p.eof() {
		return Term{}, p.errf("unexpected end of input, expected predicate")
	}
	if p.peek() == 'a' {
		c := p.peekAt(1)
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '<' || c == '[' || c == '_' || c == '"' {
			p.advance()
			return NewIRI(RDFType), nil
		}
	}
	if p.peek() == '<' {
		return p.parseIRIRef()
	}
	return p.parsePrefixedName()
}

func (p *TurtleParser) parseObjectList(subj, pred Term, emit func(Triple) error) error {
	for {
		obj, err := p.parseObject(emit)
		if err != nil {
			return err
		}
		if err := emit(Triple{S: subj, P: pred, O: obj}); err != nil {
			return err
		}
		p.skipWS()
		if p.peek() != ',' {
			return nil
		}
		p.advance()
	}
}

func (p *TurtleParser) parseObject(emit func(Triple) error) (Term, error) {
	p.skipWS()
	if p.eof() {
		return Term{}, p.errf("unexpected end of input, expected object")
	}
	c := p.peek()
	switch {
	case c == '<':
		return p.parseIRIRef()
	case c == '_':
		return p.parseBlankLabel()
	case c == '[':
		return p.parseBlankNodePropertyList(emit)
	case c == '(':
		return p.parseCollection(emit)
	case c == '"' || c == '\'':
		return p.parseString()
	case c == '+' || c == '-' || c >= '0' && c <= '9':
		return p.parseNumber()
	case p.hasWord("true"):
		p.consume(4)
		return NewTypedLiteral("true", XSDBoolean), nil
	case p.hasWord("false"):
		p.consume(5)
		return NewTypedLiteral("false", XSDBoolean), nil
	default:
		return p.parsePrefixedName()
	}
}

func (p *TurtleParser) hasWord(w string) bool {
	if !strings.HasPrefix(p.src[p.pos:], w) {
		return false
	}
	c := p.peekAt(len(w))
	return !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == ':')
}

func (p *TurtleParser) freshBlank() Term {
	p.bnodeSeq++
	return NewBlank(fmt.Sprintf("genid%d", p.bnodeSeq))
}

func (p *TurtleParser) parseBlankNodePropertyList(emit func(Triple) error) (Term, error) {
	if err := p.expect('['); err != nil {
		return Term{}, err
	}
	node := p.freshBlank()
	p.skipWS()
	if p.peek() == ']' {
		p.advance()
		return node, nil
	}
	if err := p.parsePredicateObjectList(node, emit); err != nil {
		return Term{}, err
	}
	p.skipWS()
	if err := p.expect(']'); err != nil {
		return Term{}, err
	}
	return node, nil
}

func (p *TurtleParser) parseCollection(emit func(Triple) error) (Term, error) {
	if err := p.expect('('); err != nil {
		return Term{}, err
	}
	var head, tail Term
	headSet := false
	for {
		p.skipWS()
		if p.eof() {
			return Term{}, p.errf("unterminated collection")
		}
		if p.peek() == ')' {
			p.advance()
			if !headSet {
				return NewIRI(rdfNil), nil
			}
			if err := emit(Triple{S: tail, P: NewIRI(rdfRest), O: NewIRI(rdfNil)}); err != nil {
				return Term{}, err
			}
			return head, nil
		}
		obj, err := p.parseObject(emit)
		if err != nil {
			return Term{}, err
		}
		cell := p.freshBlank()
		if !headSet {
			head = cell
			headSet = true
		} else {
			if err := emit(Triple{S: tail, P: NewIRI(rdfRest), O: cell}); err != nil {
				return Term{}, err
			}
		}
		if err := emit(Triple{S: cell, P: NewIRI(rdfFirst), O: obj}); err != nil {
			return Term{}, err
		}
		tail = cell
	}
}

func (p *TurtleParser) parseIRIRef() (Term, error) {
	if err := p.expect('<'); err != nil {
		return Term{}, err
	}
	var b strings.Builder
	for {
		if p.eof() {
			return Term{}, p.errf("unterminated IRI")
		}
		c := p.advance()
		switch c {
		case '>':
			return NewIRI(p.resolveIRI(b.String())), nil
		case '\\':
			r, err := p.parseUnicodeEscape()
			if err != nil {
				return Term{}, err
			}
			b.WriteRune(r)
		default:
			b.WriteByte(c)
		}
	}
}

func (p *TurtleParser) parseUnicodeEscape() (rune, error) {
	if p.eof() {
		return 0, p.errf("dangling escape")
	}
	kind := p.advance()
	var n int
	switch kind {
	case 'u':
		n = 4
	case 'U':
		n = 8
	default:
		return 0, p.errf("invalid IRI escape \\%c", kind)
	}
	var v rune
	for i := 0; i < n; i++ {
		if p.eof() {
			return 0, p.errf("truncated unicode escape")
		}
		c := p.advance()
		var d rune
		switch {
		case c >= '0' && c <= '9':
			d = rune(c - '0')
		case c >= 'a' && c <= 'f':
			d = rune(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = rune(c-'A') + 10
		default:
			return 0, p.errf("invalid hex digit %q", c)
		}
		v = v<<4 | d
	}
	if !utf8.ValidRune(v) {
		return 0, p.errf("unicode escape encodes an invalid rune")
	}
	return v, nil
}

func (p *TurtleParser) resolveIRI(iri string) string {
	if p.base == "" || strings.Contains(iri, "://") || strings.HasPrefix(iri, "urn:") {
		return iri
	}
	return p.base + iri
}

func (p *TurtleParser) parseBlankLabel() (Term, error) {
	if p.peekAt(1) != ':' {
		return Term{}, p.errf("malformed blank node (expected '_:')")
	}
	p.consume(2)
	start := p.pos
	for !p.eof() && isBlankLabelChar(p.peek()) {
		p.advance()
	}
	if p.pos == start {
		return Term{}, p.errf("empty blank node label")
	}
	label := p.src[start:p.pos]
	// A trailing '.' belongs to the statement terminator, not the label.
	label = strings.TrimRight(label, ".")
	if label == "" {
		return Term{}, p.errf("empty blank node label")
	}
	trimmed := (p.pos - start) - len(label)
	p.pos -= trimmed // unread the trimmed dots; they terminate the statement
	p.col -= trimmed
	return NewBlank(label), nil
}

func (p *TurtleParser) parsePrefixedName() (Term, error) {
	start := p.pos
	for !p.eof() && isPNPrefixChar(p.peek()) {
		p.advance()
	}
	if p.eof() || p.peek() != ':' {
		return Term{}, p.errf("expected prefixed name")
	}
	prefix := p.src[start:p.pos]
	p.advance() // ':'
	ns, ok := p.prefixes[prefix]
	if !ok {
		return Term{}, p.errf("undefined prefix %q", prefix)
	}
	var local strings.Builder
	for !p.eof() {
		c := p.peek()
		if c == '\\' {
			// PN_LOCAL_ESC: backslash-escaped punctuation.
			p.advance()
			if p.eof() {
				return Term{}, p.errf("dangling escape in local name")
			}
			local.WriteByte(p.advance())
			continue
		}
		if !isPNLocalChar(c) {
			break
		}
		// A '.' ends the local name if it is followed by whitespace or
		// end-of-input (statement terminator).
		if c == '.' {
			nxt := p.peekAt(1)
			if nxt == 0 || nxt == ' ' || nxt == '\t' || nxt == '\n' || nxt == '\r' {
				break
			}
		}
		local.WriteByte(p.advance())
	}
	return NewIRI(ns + local.String()), nil
}

func isPNPrefixChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || c == '-' || c >= 0x80
}

func isPNLocalChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || c == '-' || c == '.' || c == '%' || c >= 0x80
}

func (p *TurtleParser) parseString() (Term, error) {
	quote := p.advance() // '"' or '\''
	long := false
	if p.peek() == quote && p.peekAt(1) == quote {
		p.consume(2)
		long = true
	}
	var b strings.Builder
	for {
		if p.eof() {
			return Term{}, p.errf("unterminated string literal")
		}
		c := p.advance()
		if c == quote {
			if !long {
				break
			}
			if p.peek() == quote && p.peekAt(1) == quote {
				p.consume(2)
				break
			}
			b.WriteByte(c)
			continue
		}
		if c == '\\' {
			if p.eof() {
				return Term{}, p.errf("dangling escape in string")
			}
			e := p.advance()
			switch e {
			case 't':
				b.WriteByte('\t')
			case 'b':
				b.WriteByte('\b')
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 'f':
				b.WriteByte('\f')
			case '"':
				b.WriteByte('"')
			case '\'':
				b.WriteByte('\'')
			case '\\':
				b.WriteByte('\\')
			case 'u', 'U':
				p.pos-- // rewind so parseUnicodeEscape sees the marker
				p.col--
				r, err := p.parseUnicodeEscape()
				if err != nil {
					return Term{}, err
				}
				b.WriteRune(r)
			default:
				return Term{}, p.errf("invalid string escape \\%c", e)
			}
			continue
		}
		if !long && (c == '\n' || c == '\r') {
			return Term{}, p.errf("newline in short string literal")
		}
		b.WriteByte(c)
	}
	lex := b.String()
	// Optional language tag or datatype.
	if !p.eof() && p.peek() == '@' {
		p.advance()
		start := p.pos
		for !p.eof() && isLangChar(p.peek()) {
			p.advance()
		}
		if p.pos == start {
			return Term{}, p.errf("empty language tag")
		}
		return NewLangLiteral(lex, p.src[start:p.pos]), nil
	}
	if !p.eof() && p.peek() == '^' && p.peekAt(1) == '^' {
		p.consume(2)
		p.skipWS()
		var dt Term
		var err error
		if p.peek() == '<' {
			dt, err = p.parseIRIRef()
		} else {
			dt, err = p.parsePrefixedName()
		}
		if err != nil {
			return Term{}, err
		}
		return NewTypedLiteral(lex, dt.Value), nil
	}
	return NewLiteral(lex), nil
}

func (p *TurtleParser) parseNumber() (Term, error) {
	start := p.pos
	if c := p.peek(); c == '+' || c == '-' {
		p.advance()
	}
	digits := 0
	for !p.eof() && unicode.IsDigit(rune(p.peek())) {
		p.advance()
		digits++
	}
	isDecimal := false
	if !p.eof() && p.peek() == '.' {
		// Only a decimal if a digit follows; otherwise the dot terminates
		// the statement.
		if d := p.peekAt(1); d >= '0' && d <= '9' {
			isDecimal = true
			p.advance()
			for !p.eof() && unicode.IsDigit(rune(p.peek())) {
				p.advance()
				digits++
			}
		}
	}
	isDouble := false
	if c := p.peek(); c == 'e' || c == 'E' {
		isDouble = true
		p.advance()
		if c := p.peek(); c == '+' || c == '-' {
			p.advance()
		}
		expDigits := 0
		for !p.eof() && unicode.IsDigit(rune(p.peek())) {
			p.advance()
			expDigits++
		}
		if expDigits == 0 {
			return Term{}, p.errf("malformed double literal (empty exponent)")
		}
	}
	if digits == 0 {
		return Term{}, p.errf("malformed numeric literal")
	}
	lex := p.src[start:p.pos]
	switch {
	case isDouble:
		return NewTypedLiteral(lex, XSDDouble), nil
	case isDecimal:
		return NewTypedLiteral(lex, XSDDecimal), nil
	default:
		return NewTypedLiteral(lex, XSDInteger), nil
	}
}
