package rdf

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseNTriplesBasic(t *testing.T) {
	doc := `
# a comment
<http://x/s> <http://x/p> <http://x/o> .
<http://x/s> <http://x/name> "Thanh Tran" .
<http://x/s> <http://x/year> "2006"^^<` + XSDInteger + `> .
<http://x/s> <http://x/label> "Institut"@de .
_:b1 <http://x/p> _:b2 .
`
	ts, err := ParseNTriples(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 5 {
		t.Fatalf("got %d triples, want 5", len(ts))
	}
	if ts[1].O != NewLiteral("Thanh Tran") {
		t.Errorf("literal object wrong: %+v", ts[1].O)
	}
	if ts[2].O.Datatype != XSDInteger {
		t.Errorf("datatype lost: %+v", ts[2].O)
	}
	if ts[3].O.Lang != "de" {
		t.Errorf("lang tag lost: %+v", ts[3].O)
	}
	if !ts[4].S.IsBlank() || !ts[4].O.IsBlank() {
		t.Errorf("blank nodes lost: %+v", ts[4])
	}
}

func TestParseNTriplesEscapes(t *testing.T) {
	doc := `<http://x/s> <http://x/p> "a\tb\nc\"d\\eé\U0001F600" .`
	ts, err := ParseNTriples(doc)
	if err != nil {
		t.Fatal(err)
	}
	want := "a\tb\nc\"d\\eé\U0001F600"
	if ts[0].O.Value != want {
		t.Fatalf("escape decoding: got %q, want %q", ts[0].O.Value, want)
	}
}

func TestParseNTriplesTrailingComment(t *testing.T) {
	ts, err := ParseNTriples(`<http://x/s> <http://x/p> <http://x/o> . # trailing`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 {
		t.Fatalf("got %d triples, want 1", len(ts))
	}
}

func TestParseNTriplesErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"missing dot", `<http://x/s> <http://x/p> <http://x/o>`},
		{"literal subject", `"lit" <http://x/p> <http://x/o> .`},
		{"literal predicate", `<http://x/s> "p" <http://x/o> .`},
		{"blank predicate", `<http://x/s> _:b <http://x/o> .`},
		{"unterminated iri", `<http://x/s <http://x/p> <http://x/o> .`},
		{"unterminated literal", `<http://x/s> <http://x/p> "open .`},
		{"bad escape", `<http://x/s> <http://x/p> "a\qb" .`},
		{"truncated unicode", `<http://x/s> <http://x/p> "\u00" .`},
		{"trailing garbage", `<http://x/s> <http://x/p> <http://x/o> . extra`},
		{"empty iri", `<> <http://x/p> <http://x/o> .`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseNTriples(c.doc); err == nil {
				t.Fatalf("expected parse error for %q", c.doc)
			} else if _, ok := err.(*ParseError); !ok {
				t.Fatalf("expected *ParseError, got %T: %v", err, err)
			}
		})
	}
}

func TestParseErrorMessageHasPosition(t *testing.T) {
	_, err := ParseNTriples("\n\n<http://x/s> <http://x/p> bad .")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("want *ParseError, got %v", err)
	}
	if pe.Line != 3 {
		t.Fatalf("error line = %d, want 3", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line 3") {
		t.Fatalf("error string should mention line: %q", pe.Error())
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	orig := []Triple{
		NewTriple(NewIRI("http://x/s"), NewIRI("http://x/p"), NewIRI("http://x/o")),
		NewTriple(NewIRI("http://x/s"), NewIRI("http://x/name"), NewLiteral("weird \"chars\"\t\n\\")),
		NewTriple(NewBlank("b0"), NewIRI("http://x/p"), NewLangLiteral("hé", "fr")),
		NewTriple(NewIRI("http://x/s"), NewIRI("http://x/y"), NewTypedLiteral("2006", XSDGYear)),
	}
	var buf bytes.Buffer
	if err := WriteNTriples(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseNTriples(buf.String())
	if err != nil {
		t.Fatalf("reparse failed: %v\ndoc:\n%s", err, buf.String())
	}
	if len(back) != len(orig) {
		t.Fatalf("round trip count: got %d, want %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Errorf("triple %d: got %+v, want %+v", i, back[i], orig[i])
		}
	}
}

// TestNTriplesIRIEscapeRoundTrip: IRI values holding characters the
// IRIREF production forbids (backslash, angle brackets, space,
// controls) must serialize as \u escapes and parse back identically —
// a raw backslash used to be written verbatim and choke the reparse.
func TestNTriplesIRIEscapeRoundTrip(t *testing.T) {
	for _, iri := range []string{
		`http://x/a\b`, "http://x/a>b", "http://x/a<b", "http://x/a b",
		"http://x/a\"b", "http://x/a|b", "http://x/a^b", "http://x/a\nb",
	} {
		tr := NewTriple(NewIRI(iri), NewIRI("http://x/p"), NewTypedLiteral("1", iri))
		back, err := ParseNTriples(tr.String())
		if err != nil {
			t.Fatalf("%q: reparse failed: %v\nline: %s", iri, err, tr.String())
		}
		if len(back) != 1 || back[0] != tr {
			t.Fatalf("%q: round trip diverged: %+v", iri, back)
		}
	}
}

// TestNTriplesRoundTripProperty checks serialize→parse identity for
// arbitrary literal contents (the hardest part of the grammar).
func TestNTriplesRoundTripProperty(t *testing.T) {
	f := func(lex string, lang bool) bool {
		if !isValidUTF8(lex) {
			return true // skip invalid encodings; writer assumes UTF-8 input
		}
		var o Term
		if lang {
			o = NewLangLiteral(lex, "en")
		} else {
			o = NewLiteral(lex)
		}
		tr := NewTriple(NewIRI("http://x/s"), NewIRI("http://x/p"), o)
		back, err := ParseNTriples(tr.String())
		if err != nil {
			return false
		}
		return len(back) == 1 && back[0] == tr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func isValidUTF8(s string) bool {
	for _, r := range s {
		if r == 0xFFFD {
			return false
		}
	}
	return true
}

func TestNTriplesReaderStreams(t *testing.T) {
	doc := strings.Repeat("<http://x/s> <http://x/p> <http://x/o> .\n", 1000)
	r := NewNTriplesReader(strings.NewReader(doc))
	n := 0
	for {
		_, err := r.Read()
		if err != nil {
			break
		}
		n++
	}
	if n != 1000 {
		t.Fatalf("streamed %d triples, want 1000", n)
	}
}
