package rdf

import (
	"sort"
	"strings"
	"testing"
)

func mustParseTurtle(t *testing.T, doc string) []Triple {
	t.Helper()
	ts, err := ParseTurtle(doc)
	if err != nil {
		t.Fatalf("ParseTurtle: %v\ndoc:\n%s", err, doc)
	}
	return ts
}

func TestTurtlePrefixAndA(t *testing.T) {
	doc := `
@prefix ex: <http://example.org/> .
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
ex:alice a ex:Person .
ex:alice rdf:type ex:Agent .
`
	ts := mustParseTurtle(t, doc)
	if len(ts) != 2 {
		t.Fatalf("got %d triples, want 2", len(ts))
	}
	for _, tr := range ts {
		if tr.P.Value != RDFType {
			t.Errorf("predicate should be rdf:type, got %s", tr.P.Value)
		}
	}
	if ts[0].O.Value != "http://example.org/Person" {
		t.Errorf("prefixed name expansion broken: %s", ts[0].O.Value)
	}
}

func TestTurtleSPARQLStyleDirectives(t *testing.T) {
	doc := `
PREFIX ex: <http://example.org/>
BASE <http://base.org/>
ex:a ex:knows <rel> .
`
	ts := mustParseTurtle(t, doc)
	if len(ts) != 1 {
		t.Fatalf("got %d triples, want 1", len(ts))
	}
	if ts[0].O.Value != "http://base.org/rel" {
		t.Errorf("base resolution broken: %s", ts[0].O.Value)
	}
}

func TestTurtlePredicateObjectLists(t *testing.T) {
	doc := `
@prefix ex: <http://example.org/> .
ex:pub1 a ex:Publication ;
    ex:year 2006 ;
    ex:author ex:tran , ex:cimiano .
`
	ts := mustParseTurtle(t, doc)
	if len(ts) != 4 {
		t.Fatalf("got %d triples, want 4", len(ts))
	}
	authors := 0
	for _, tr := range ts {
		if tr.P.Value == "http://example.org/author" {
			authors++
		}
		if tr.P.Value == "http://example.org/year" {
			if tr.O.Datatype != XSDInteger || tr.O.Value != "2006" {
				t.Errorf("integer literal wrong: %+v", tr.O)
			}
		}
	}
	if authors != 2 {
		t.Errorf("object list expansion: got %d author triples, want 2", authors)
	}
}

func TestTurtleLiteralForms(t *testing.T) {
	doc := `
@prefix ex: <http://example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:x ex:p "plain" .
ex:x ex:p 'single' .
ex:x ex:p """long
with newline""" .
ex:x ex:p "tagged"@en-US .
ex:x ex:p "typed"^^xsd:token .
ex:x ex:p 3.25 .
ex:x ex:p -7 .
ex:x ex:p 1.0e6 .
ex:x ex:p true .
ex:x ex:p false .
`
	ts := mustParseTurtle(t, doc)
	if len(ts) != 10 {
		t.Fatalf("got %d triples, want 10", len(ts))
	}
	byVal := map[string]Term{}
	for _, tr := range ts {
		byVal[tr.O.Value] = tr.O
	}
	if byVal["long\nwith newline"].Value == "" {
		t.Error("long literal lost")
	}
	if byVal["tagged"].Lang != "en-us" {
		t.Errorf("lang tag: %+v", byVal["tagged"])
	}
	if byVal["typed"].Datatype != "http://www.w3.org/2001/XMLSchema#token" {
		t.Errorf("prefixed datatype: %+v", byVal["typed"])
	}
	if byVal["3.25"].Datatype != XSDDecimal {
		t.Errorf("decimal: %+v", byVal["3.25"])
	}
	if byVal["-7"].Datatype != XSDInteger {
		t.Errorf("negative integer: %+v", byVal["-7"])
	}
	if byVal["1.0e6"].Datatype != XSDDouble {
		t.Errorf("double: %+v", byVal["1.0e6"])
	}
	if byVal["true"].Datatype != XSDBoolean || byVal["false"].Datatype != XSDBoolean {
		t.Error("boolean literals wrong")
	}
}

func TestTurtleBlankNodes(t *testing.T) {
	doc := `
@prefix ex: <http://example.org/> .
_:a ex:knows _:b .
ex:x ex:address [ ex:city "Karlsruhe" ; ex:zip "76131" ] .
`
	ts := mustParseTurtle(t, doc)
	if len(ts) != 4 {
		t.Fatalf("got %d triples, want 4", len(ts))
	}
	var addrObj Term
	for _, tr := range ts {
		if tr.P.Value == "http://example.org/address" {
			addrObj = tr.O
		}
	}
	if !addrObj.IsBlank() {
		t.Fatalf("anonymous blank node not generated: %+v", addrObj)
	}
	cityFound := false
	for _, tr := range ts {
		if tr.S == addrObj && tr.P.Value == "http://example.org/city" {
			cityFound = true
		}
	}
	if !cityFound {
		t.Error("nested property list triples not attached to generated node")
	}
}

func TestTurtleBareBlankSubject(t *testing.T) {
	doc := `
@prefix ex: <http://example.org/> .
[ ex:p ex:o ] .
[ ex:p ex:o2 ] ex:q ex:r .
`
	ts := mustParseTurtle(t, doc)
	if len(ts) != 3 {
		t.Fatalf("got %d triples, want 3", len(ts))
	}
}

func TestTurtleCollections(t *testing.T) {
	doc := `
@prefix ex: <http://example.org/> .
ex:x ex:list (ex:a ex:b) .
ex:y ex:list () .
`
	ts := mustParseTurtle(t, doc)
	// (ex:a ex:b) → 2 first + 2 rest + the ex:list triple; () → rdf:nil object.
	preds := map[string]int{}
	for _, tr := range ts {
		preds[tr.P.Value]++
	}
	if preds[rdfFirst] != 2 || preds[rdfRest] != 2 {
		t.Fatalf("collection encoding wrong: %v", preds)
	}
	nilSeen := false
	for _, tr := range ts {
		if tr.P.Value == "http://example.org/list" && tr.O.Value == rdfNil {
			nilSeen = true
		}
	}
	if !nilSeen {
		t.Error("empty collection should produce rdf:nil object")
	}
}

func TestTurtleRunningExample(t *testing.T) {
	// The paper's Fig. 1a example data, written in Turtle.
	ts := mustParseTurtle(t, Fig1ExampleTurtle)
	if len(ts) != 22 {
		t.Fatalf("Fig.1 example should yield 22 triples, got %d", len(ts))
	}
	var subs []string
	for _, tr := range ts {
		if tr.P.Value == RDFSSubClass {
			subs = append(subs, tr.S.LocalName()+"<"+tr.O.LocalName())
		}
	}
	sort.Strings(subs)
	want := []string{"Institute<Agent", "Person<Agent", "Agent<Thing", "Researcher<Person"}
	sort.Strings(want)
	if strings.Join(subs, ",") != strings.Join(want, ",") {
		t.Errorf("subclass edges: got %v, want %v", subs, want)
	}
}

func TestTurtleErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"undefined prefix", `ex:a ex:b ex:c .`},
		{"missing dot", `@prefix ex: <http://e/> . ex:a ex:b ex:c`},
		{"unterminated string", `@prefix ex: <http://e/> . ex:a ex:b "open .`},
		{"unterminated iri", `<http://e/a <http://e/b> <http://e/c> .`},
		{"bad directive", `@prefiks ex: <http://e/> .`},
		{"newline in short string", "@prefix ex: <http://e/> . ex:a ex:b \"a\nb\" ."},
		{"empty exponent", `@prefix ex: <http://e/> . ex:a ex:b 1e .`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseTurtle(c.doc); err == nil {
				t.Fatalf("expected error for %q", c.doc)
			}
		})
	}
}

func TestTurtleTrailingSemicolon(t *testing.T) {
	doc := `
@prefix ex: <http://example.org/> .
ex:a ex:p ex:b ;
     ex:q ex:c ;
     .
`
	ts := mustParseTurtle(t, doc)
	if len(ts) != 2 {
		t.Fatalf("got %d triples, want 2", len(ts))
	}
}
