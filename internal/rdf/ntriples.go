package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// ParseError reports a syntax error with its position in the input.
type ParseError struct {
	Line int    // 1-based line number
	Col  int    // 1-based byte column
	Msg  string // description of the problem
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("rdf: parse error at line %d, col %d: %s", e.Line, e.Col, e.Msg)
}

// NTriplesReader parses the N-Triples line-based format. It tolerates
// comment lines (#...), blank lines, and surrounding whitespace.
type NTriplesReader struct {
	sc   *bufio.Scanner
	line int
}

// NewNTriplesReader wraps r for triple-at-a-time reading.
func NewNTriplesReader(r io.Reader) *NTriplesReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &NTriplesReader{sc: sc}
}

// Read returns the next triple, or io.EOF when the input is exhausted.
func (nr *NTriplesReader) Read() (Triple, error) {
	for nr.sc.Scan() {
		nr.line++
		line := strings.TrimSpace(nr.sc.Text())
		if line == "" || line[0] == '#' {
			continue
		}
		t, err := parseNTriplesLine(line, nr.line)
		if err != nil {
			return Triple{}, err
		}
		return t, nil
	}
	if err := nr.sc.Err(); err != nil {
		return Triple{}, err
	}
	return Triple{}, io.EOF
}

// ReadAll consumes the remaining input and returns all triples.
func (nr *NTriplesReader) ReadAll() ([]Triple, error) {
	var ts []Triple
	for {
		t, err := nr.Read()
		if err == io.EOF {
			return ts, nil
		}
		if err != nil {
			return ts, err
		}
		ts = append(ts, t)
	}
}

// ParseNTriples parses a complete N-Triples document held in a string.
func ParseNTriples(s string) ([]Triple, error) {
	return NewNTriplesReader(strings.NewReader(s)).ReadAll()
}

type lineParser struct {
	s    string
	pos  int
	line int
}

func (p *lineParser) err(msg string) error {
	return &ParseError{Line: p.line, Col: p.pos + 1, Msg: msg}
}

func (p *lineParser) skipWS() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t') {
		p.pos++
	}
}

func (p *lineParser) eof() bool { return p.pos >= len(p.s) }

func parseNTriplesLine(line string, lineNo int) (Triple, error) {
	p := &lineParser{s: line, line: lineNo}
	s, err := p.parseTerm(true)
	if err != nil {
		return Triple{}, err
	}
	if s.Kind == Literal {
		return Triple{}, p.err("subject must be an IRI or blank node")
	}
	p.skipWS()
	pr, err := p.parseTerm(false)
	if err != nil {
		return Triple{}, err
	}
	if pr.Kind != IRI {
		return Triple{}, p.err("predicate must be an IRI")
	}
	p.skipWS()
	o, err := p.parseTerm(true)
	if err != nil {
		return Triple{}, err
	}
	p.skipWS()
	if p.eof() || p.s[p.pos] != '.' {
		return Triple{}, p.err("expected terminating '.'")
	}
	p.pos++
	p.skipWS()
	if !p.eof() && p.s[p.pos] != '#' {
		return Triple{}, p.err("unexpected trailing content after '.'")
	}
	return Triple{S: s, P: pr, O: o}, nil
}

// parseTerm parses one term. allowNonIRI permits literals and blank nodes.
func (p *lineParser) parseTerm(allowNonIRI bool) (Term, error) {
	p.skipWS()
	if p.eof() {
		return Term{}, p.err("unexpected end of line, expected a term")
	}
	switch p.s[p.pos] {
	case '<':
		return p.parseIRIRef()
	case '_':
		if !allowNonIRI {
			return Term{}, p.err("blank node not allowed here")
		}
		return p.parseBlank()
	case '"':
		if !allowNonIRI {
			return Term{}, p.err("literal not allowed here")
		}
		return p.parseLiteral()
	default:
		return Term{}, p.err(fmt.Sprintf("unexpected character %q at start of term", p.s[p.pos]))
	}
}

func (p *lineParser) parseIRIRef() (Term, error) {
	p.pos++ // consume '<'
	start := p.pos
	var b strings.Builder
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		switch c {
		case '>':
			var v string
			if b.Len() == 0 {
				v = p.s[start:p.pos]
			} else {
				b.WriteString(p.s[start:p.pos])
				v = b.String()
			}
			p.pos++
			if v == "" {
				return Term{}, p.err("empty IRI")
			}
			return NewIRI(v), nil
		case '\\':
			b.WriteString(p.s[start:p.pos])
			r, err := p.parseEscape()
			if err != nil {
				return Term{}, err
			}
			b.WriteRune(r)
			start = p.pos
		default:
			p.pos++
		}
	}
	return Term{}, p.err("unterminated IRI (missing '>')")
}

func (p *lineParser) parseBlank() (Term, error) {
	if p.pos+1 >= len(p.s) || p.s[p.pos+1] != ':' {
		return Term{}, p.err("malformed blank node label (expected '_:')")
	}
	p.pos += 2
	start := p.pos
	for p.pos < len(p.s) && isBlankLabelChar(p.s[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return Term{}, p.err("empty blank node label")
	}
	return NewBlank(p.s[start:p.pos]), nil
}

func isBlankLabelChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || c == '-' || c == '.'
}

func (p *lineParser) parseLiteral() (Term, error) {
	p.pos++ // consume opening quote
	var b strings.Builder
	start := p.pos
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		switch c {
		case '"':
			var lex string
			if b.Len() == 0 {
				lex = p.s[start:p.pos]
			} else {
				b.WriteString(p.s[start:p.pos])
				lex = b.String()
			}
			p.pos++
			return p.parseLiteralSuffix(lex)
		case '\\':
			b.WriteString(p.s[start:p.pos])
			r, err := p.parseEscape()
			if err != nil {
				return Term{}, err
			}
			b.WriteRune(r)
			start = p.pos
		default:
			p.pos++
		}
	}
	return Term{}, p.err("unterminated literal (missing '\"')")
}

func (p *lineParser) parseLiteralSuffix(lex string) (Term, error) {
	if p.eof() {
		return NewLiteral(lex), nil
	}
	switch p.s[p.pos] {
	case '@':
		p.pos++
		start := p.pos
		for p.pos < len(p.s) && isLangChar(p.s[p.pos]) {
			p.pos++
		}
		if p.pos == start {
			return Term{}, p.err("empty language tag")
		}
		return NewLangLiteral(lex, p.s[start:p.pos]), nil
	case '^':
		if p.pos+1 >= len(p.s) || p.s[p.pos+1] != '^' {
			return Term{}, p.err("malformed datatype marker (expected '^^')")
		}
		p.pos += 2
		if p.eof() || p.s[p.pos] != '<' {
			return Term{}, p.err("expected datatype IRI after '^^'")
		}
		dt, err := p.parseIRIRef()
		if err != nil {
			return Term{}, err
		}
		return NewTypedLiteral(lex, dt.Value), nil
	default:
		return NewLiteral(lex), nil
	}
}

func isLangChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '-'
}

// parseEscape parses the escape sequence starting at the backslash under
// the cursor and returns the decoded rune; the cursor ends one past it.
func (p *lineParser) parseEscape() (rune, error) {
	p.pos++ // consume '\\'
	if p.eof() {
		return 0, p.err("dangling escape at end of line")
	}
	c := p.s[p.pos]
	p.pos++
	switch c {
	case 't':
		return '\t', nil
	case 'b':
		return '\b', nil
	case 'n':
		return '\n', nil
	case 'r':
		return '\r', nil
	case 'f':
		return '\f', nil
	case '"':
		return '"', nil
	case '\'':
		return '\'', nil
	case '\\':
		return '\\', nil
	case 'u':
		return p.parseHexEscape(4)
	case 'U':
		return p.parseHexEscape(8)
	default:
		return 0, p.err(fmt.Sprintf("invalid escape sequence \\%c", c))
	}
}

func (p *lineParser) parseHexEscape(n int) (rune, error) {
	if p.pos+n > len(p.s) {
		return 0, p.err("truncated unicode escape")
	}
	var v rune
	for i := 0; i < n; i++ {
		c := p.s[p.pos+i]
		var d rune
		switch {
		case c >= '0' && c <= '9':
			d = rune(c - '0')
		case c >= 'a' && c <= 'f':
			d = rune(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = rune(c-'A') + 10
		default:
			return 0, p.err(fmt.Sprintf("invalid hex digit %q in unicode escape", c))
		}
		v = v<<4 | d
	}
	p.pos += n
	if !utf8.ValidRune(v) {
		return 0, p.err("unicode escape encodes an invalid rune")
	}
	return v, nil
}

// NTriplesWriter serializes triples one per line.
type NTriplesWriter struct {
	w   *bufio.Writer
	err error
}

// NewNTriplesWriter wraps w for buffered triple output.
func NewNTriplesWriter(w io.Writer) *NTriplesWriter {
	return &NTriplesWriter{w: bufio.NewWriter(w)}
}

// Write emits one triple. After the first error, subsequent writes are
// no-ops returning the same error.
func (nw *NTriplesWriter) Write(t Triple) error {
	if nw.err != nil {
		return nw.err
	}
	if _, err := nw.w.WriteString(t.String()); err != nil {
		nw.err = err
		return err
	}
	if err := nw.w.WriteByte('\n'); err != nil {
		nw.err = err
		return err
	}
	return nil
}

// Flush flushes buffered output to the underlying writer.
func (nw *NTriplesWriter) Flush() error {
	if nw.err != nil {
		return nw.err
	}
	return nw.w.Flush()
}

// WriteNTriples serializes all triples to w in N-Triples format.
func WriteNTriples(w io.Writer, triples []Triple) error {
	nw := NewNTriplesWriter(w)
	for _, t := range triples {
		if err := nw.Write(t); err != nil {
			return err
		}
	}
	return nw.Flush()
}
