package rdf

import (
	"bufio"
	"io"
	"sort"
	"strings"
)

// TurtleWriter serializes triples as Turtle, grouping consecutive triples
// with the same subject into predicate lists and abbreviating IRIs with
// registered prefixes. rdf:type is written as "a".
type TurtleWriter struct {
	w        *bufio.Writer
	prefixes []prefixDef // longest-namespace-first
	wrote    bool        // directives emitted
	subject  Term        // subject of the open predicate list
	open     bool
	err      error
}

type prefixDef struct {
	prefix, ns string
}

// NewTurtleWriter wraps w. Register prefixes before the first Write.
func NewTurtleWriter(w io.Writer) *TurtleWriter {
	return &TurtleWriter{w: bufio.NewWriter(w)}
}

// SetPrefix registers a namespace abbreviation (e.g. "ex" for
// "http://example.org/"). Must be called before the first Write.
func (tw *TurtleWriter) SetPrefix(prefix, ns string) {
	tw.prefixes = append(tw.prefixes, prefixDef{prefix: prefix, ns: ns})
	sort.SliceStable(tw.prefixes, func(i, j int) bool {
		return len(tw.prefixes[i].ns) > len(tw.prefixes[j].ns)
	})
}

// Write emits one triple. Triples should arrive grouped by subject for
// the most compact output; any order is valid.
func (tw *TurtleWriter) Write(t Triple) error {
	if tw.err != nil {
		return tw.err
	}
	if !tw.wrote {
		tw.wrote = true
		for _, p := range tw.prefixes {
			tw.print("@prefix " + p.prefix + ": <" + p.ns + "> .\n")
		}
		if len(tw.prefixes) > 0 {
			tw.print("\n")
		}
	}
	if tw.open && tw.subject == t.S {
		tw.print(" ;\n    ")
	} else {
		if tw.open {
			tw.print(" .\n")
		}
		tw.printTerm(t.S)
		tw.print(" ")
		tw.subject = t.S
		tw.open = true
	}
	if t.P.Value == RDFType {
		tw.print("a")
	} else {
		tw.printTerm(t.P)
	}
	tw.print(" ")
	tw.printTerm(t.O)
	return tw.err
}

// Close terminates the final statement and flushes. The writer must not
// be used afterwards.
func (tw *TurtleWriter) Close() error {
	if tw.err != nil {
		return tw.err
	}
	if tw.open {
		tw.print(" .\n")
		tw.open = false
	}
	if err := tw.w.Flush(); err != nil && tw.err == nil {
		tw.err = err
	}
	return tw.err
}

func (tw *TurtleWriter) print(s string) {
	if tw.err != nil {
		return
	}
	if _, err := tw.w.WriteString(s); err != nil {
		tw.err = err
	}
}

func (tw *TurtleWriter) printTerm(t Term) {
	if t.Kind == IRI {
		for _, p := range tw.prefixes {
			if local, ok := strings.CutPrefix(t.Value, p.ns); ok && isSafeLocal(local) {
				tw.print(p.prefix + ":" + local)
				return
			}
		}
	}
	tw.print(t.String()) // N-Triples form is valid Turtle
}

// isSafeLocal reports whether a local name can appear in a prefixed name
// without escaping (conservative subset of PN_LOCAL).
func isSafeLocal(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			c >= '0' && c <= '9' || c == '_' || c == '-'
		if !ok {
			return false
		}
	}
	return true
}

// WriteTurtle serializes triples (sorted by subject for compact grouping)
// with the given prefix map.
func WriteTurtle(w io.Writer, triples []Triple, prefixes map[string]string) error {
	tw := NewTurtleWriter(w)
	for prefix, ns := range prefixes {
		tw.SetPrefix(prefix, ns)
	}
	sorted := make([]Triple, len(triples))
	copy(sorted, triples)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].S.Compare(sorted[j].S) < 0 })
	for _, t := range sorted {
		if err := tw.Write(t); err != nil {
			return err
		}
	}
	return tw.Close()
}
