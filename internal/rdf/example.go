package rdf

// ExampleNS is the namespace used by the paper's Fig. 1 running example.
const ExampleNS = "http://example.org/"

// Fig1ExampleTurtle is the RDF data graph of Fig. 1a in the paper
// (publications, researchers, projects, institutes), extended with the
// hasProject edge that the running keyword query
// "X-Media Philipp Cimiano publications" relies on (Sec. III).
//
// It is used by tests and examples throughout the repository as the
// canonical tiny dataset: the expected top query for the keywords
// {2006, cimiano, aifb} is the conjunctive query of Fig. 1c.
const Fig1ExampleTurtle = `
@prefix ex: <http://example.org/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .

ex:pro2 a ex:Project .
ex:pro1 a ex:Project ;
        ex:name "X-Media" .
ex:pub1 a ex:Publication ;
        ex:author ex:re1 , ex:re2 ;
        ex:year "2006" ;
        ex:hasProject ex:pro1 .
ex:pub2 a ex:Publication .
ex:re1  a ex:Researcher ;
        ex:name "Thanh Tran" ;
        ex:worksAt ex:inst1 .
ex:re2  a ex:Researcher ;
        ex:name "P. Cimiano" ;
        ex:worksAt ex:inst1 .
ex:inst1 a ex:Institute ;
        ex:name "AIFB" .
ex:inst2 a ex:Institute .

ex:Institute  rdfs:subClassOf ex:Agent .
ex:Researcher rdfs:subClassOf ex:Person .
ex:Person     rdfs:subClassOf ex:Agent .
ex:Agent      rdfs:subClassOf ex:Thing .
`

// MustParseFig1 parses Fig1ExampleTurtle; it panics on error and is meant
// for tests and examples.
func MustParseFig1() []Triple {
	ts, err := ParseTurtle(Fig1ExampleTurtle)
	if err != nil {
		panic("rdf: Fig1ExampleTurtle does not parse: " + err.Error())
	}
	return ts
}
