// Command pipeline demonstrates the full offline/online split of Fig. 2
// on custom data: it serializes a generated TAP-shaped dataset to
// N-Triples, loads it into a fresh engine (as a user would load their own
// RDF file), builds the indexes, answers keyword queries, and then runs
// the same information need through the three baseline searchers
// (backward, bidirectional, BLINKS) to contrast query computation on the
// summary graph with answer search on the data graph.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	repro "repro"
	"repro/internal/baseline"
	"repro/internal/datagen"
	"repro/internal/rdf"
)

func main() {
	// ── Offline: produce an RDF document (here: generated TAP data).
	triples := datagen.TAPTriples(datagen.TAPConfig{InstancesPerClass: 30, Seed: 3})
	var doc bytes.Buffer
	if err := rdf.WriteNTriples(&doc, triples); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serialized %d triples to N-Triples (%d KB)\n\n", len(triples), doc.Len()/1024)

	// ── Load into a fresh engine, as any downstream user would.
	e := repro.New(repro.Config{K: 5})
	n, err := e.LoadNTriples(&doc)
	if err != nil {
		log.Fatal(err)
	}
	e.Build()
	fmt.Printf("loaded %d triples; preprocessing took %v\n", n, e.BuildTime)
	fmt.Printf("summary graph: %d elements; keyword index: %d refs\n\n",
		e.Summary().NumElements(), e.KeywordIndex().Stats().Refs)

	// ── Online: keyword search through query computation.
	keywords := []string{"basketball", "karlsruhe"}
	fmt.Printf("keyword query: %v\n", keywords)
	cands, info, err := e.Search(keywords)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query computation: %v (%d candidates)\n", info.Elapsed, len(cands))
	for i, c := range cands {
		if i == 3 {
			break
		}
		fmt.Printf("  #%d cost=%.2f  %s\n", i+1, c.Cost, c.Describe())
	}
	rs, processed, err := e.AnswersForTop(cands, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("answers: %d (from the top %d queries)\n\n", rs.Len(), processed)

	// ── The same information need on the data graph, baseline-style.
	g := e.Graph()
	vix := baseline.BuildVertexIndex(g)
	sets, ok := vix.MatchAll(keywords)
	if !ok {
		fmt.Println("baselines: some keyword matches no vertex")
		return
	}
	run := func(name string, f func() int) {
		start := time.Now()
		trees := f()
		fmt.Printf("  %-22s %8v  %d answer trees\n", name, time.Since(start), trees)
	}
	run("backward (BANKS)", func() int {
		return len(baseline.Backward(g, sets, baseline.BackwardOptions{K: 10}).Trees)
	})
	run("bidirectional", func() int {
		return len(baseline.Bidirectional(g, sets, baseline.BidirectionalOptions{K: 10}).Trees)
	})
	for _, scheme := range []baseline.PartitionScheme{baseline.PartitionBFS, baseline.PartitionMetis} {
		ix := baseline.BuildBlinks(g, 50, scheme)
		run(fmt.Sprintf("BLINKS (50 %s blocks)", scheme), func() int {
			return len(ix.Search(sets, baseline.BackwardOptions{K: 10}).Trees)
		})
	}
}
