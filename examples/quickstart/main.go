// Command quickstart runs the paper's running example end-to-end: it
// loads the Fig. 1 RDF graph, searches for the keywords
// "2006 cimiano aifb", prints the computed top-k conjunctive queries, and
// executes the best one — reproducing the Sec. III walkthrough in ~40
// lines of API use.
package main

import (
	"fmt"
	"log"
	"strings"

	repro "repro"
	"repro/internal/rdf"
)

func main() {
	e := repro.New(repro.Config{K: 5})
	if _, err := e.LoadTurtle(strings.NewReader(rdf.Fig1ExampleTurtle)); err != nil {
		log.Fatal(err)
	}

	keywords := []string{"2006", "cimiano", "aifb"}
	fmt.Printf("keyword query: %v\n\n", keywords)

	cands, info, err := e.Search(keywords)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("computed %d query candidates in %v (top-k guarantee: %v)\n\n",
		len(cands), info.Elapsed, info.Guaranteed)
	for i, c := range cands {
		fmt.Printf("#%d  cost=%.3f  %s\n", i+1, c.Cost, c.Describe())
	}

	fmt.Printf("\nbest query as SPARQL:\n%s\n", cands[0].SPARQL())

	rs, err := e.Execute(cands[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanswers (%d):\n%s", rs.Len(), rs)
}
