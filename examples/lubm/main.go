// Command lubm explores schema-rich LUBM university data: the class
// hierarchy participates in query computation (subclass edges appear in
// matching subgraphs), and semantically similar keywords ("college",
// "supervisor") reach schema elements through the thesaurus. It also
// prints the summary-graph statistics that explain why exploration on the
// graph index is cheap (Sec. IV-B).
package main

import (
	"flag"
	"fmt"

	repro "repro"
	"repro/internal/datagen"
)

func main() {
	unis := flag.Int("universities", 1, "LUBM scale factor")
	flag.Parse()

	fmt.Printf("generating LUBM(%d)...\n", *unis)
	triples := datagen.LUBMTriples(datagen.LUBMConfig{Universities: *unis, Seed: 7})
	fmt.Printf("%d triples\n\n", len(triples))

	e := repro.New(repro.Config{K: 5})
	e.AddTriples(triples)
	e.Build()

	g := e.Graph().Stats()
	fmt.Printf("data graph:    %d entities, %d classes, %d values, %d R-edges, %d A-edges\n",
		g.EVertices, g.CVertices, g.VVertices, g.REdges, g.AEdges)
	fmt.Printf("summary graph: %d elements (vs %d data triples) — the search space reduction of Sec. IV-B\n\n",
		e.Summary().NumElements(), g.Triples())

	show := func(keywords ...string) {
		fmt.Printf("── query: %v\n", keywords)
		cands, info, err := e.Search(keywords)
		if err != nil {
			fmt.Printf("   %v\n\n", err)
			return
		}
		fmt.Printf("   %d candidates in %v\n", len(cands), info.Elapsed)
		for i, c := range cands {
			if i == 3 {
				break
			}
			fmt.Printf("   #%d cost=%.2f  %s\n", i+1, c.Cost, c.Describe())
		}
		rs, _, _ := e.AnswersForTop(cands, 3)
		fmt.Printf("   sample answers: %d\n\n", rs.Len())
	}

	// Keywords hitting classes and relations of the univ-bench schema.
	show("professor", "course")
	show("student", "advisor")
	// Semantic matches: college → university, supervisor → advisor.
	show("college", "department")
	show("supervisor", "student")
	// A relation keyword ("takes" matches takesCourse via camel-case
	// splitting) plus a class keyword.
	show("takes", "graduate")
}
