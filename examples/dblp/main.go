// Command dblp demonstrates the paper's motivating workload: keyword
// search over DBLP-shaped bibliographic data. It generates a synthetic
// DBLP graph, runs the kind of queries the evaluation uses ("author +
// topic + year" information needs), compares the three scoring functions
// C1/C2/C3 on an ambiguous query, and shows fuzzy and semantic matching
// at work.
package main

import (
	"flag"
	"fmt"
	"log"

	repro "repro"
	"repro/internal/datagen"
	"repro/internal/scoring"
)

func main() {
	pubs := flag.Int("pubs", 2000, "number of publications to generate")
	flag.Parse()

	fmt.Printf("generating DBLP-shaped dataset with %d publications...\n", *pubs)
	triples := datagen.DBLPTriples(datagen.DBLPConfig{Publications: *pubs, Seed: 42})
	fmt.Printf("%d triples\n\n", len(triples))

	e := repro.New(repro.Config{K: 5})
	e.AddTriples(triples)
	e.Build()
	fmt.Printf("preprocessing (graph + keyword index): %v\n", e.BuildTime)
	ks := e.KeywordIndex().Stats()
	fmt.Printf("keyword index: %d refs, %d terms, %d postings (~%d KB)\n\n",
		ks.Refs, ks.Terms, ks.Postings, ks.EstimatedBytes()/1024)

	show := func(keywords ...string) {
		fmt.Printf("── query: %v\n", keywords)
		cands, info, err := e.Search(keywords)
		if err != nil {
			fmt.Printf("   %v\n\n", err)
			return
		}
		fmt.Printf("   %d candidates in %v (cursors popped: %d)\n",
			len(cands), info.Elapsed, info.Exploration.CursorsPopped)
		for i, c := range cands {
			if i == 2 {
				break
			}
			fmt.Printf("   #%d cost=%.2f  %s\n", i+1, c.Cost, c.Describe())
		}
		rs, n, err := e.AnswersForTop(cands, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   answers from top %d queries: %d\n\n", n, rs.Len())
	}

	// The paper's flagship interaction: an author + a type keyword.
	show("thanh tran", "publication")
	// Author + venue-ish keyword.
	show("cimiano", "conference")
	// Value + value: a title phrase and a year.
	show("exploration", "1999")
	// A typo — fuzzy matching maps "cimano" to "Cimiano".
	show("cimano", "publication")
	// A synonym — "paper" reaches the Publication class via the thesaurus.
	show("paper", "rudolph")

	// Filter operators (the paper's Sec. IX extension): "before 2005"
	// becomes a FILTER on the year variable.
	fmt.Println("── filter query: [thanh tran, before 2005]")
	cands, _, err := e.Search([]string{"thanh tran", "before 2005"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   top: %s\n", cands[0].Describe())
	rs, err := e.Execute(cands[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   answers: %d\n\n", rs.Len())

	// Scoring comparison on an ambiguous query: "tran" matches several
	// authors; C3 promotes the interpretation with the best match.
	fmt.Println("── scoring comparison for [tran, publication]:")
	for _, s := range []scoring.Scheme{scoring.PathLength, scoring.Popularity, scoring.Matching} {
		es := repro.New(repro.Config{K: 3, Scoring: s})
		es.AddTriples(triples)
		cands, _, err := es.Search([]string{"tran", "publication"})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %v: top = %s\n", s, cands[0].Describe())
	}
}
