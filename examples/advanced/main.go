// Command advanced demonstrates the production-oriented features around
// the core pipeline: binary snapshots of the parsed data (fast reload of
// the off-line phase), filter-operator keywords ("before 2005" — the
// paper's Sec. IX extension), and EXPLAIN plans from the underlying
// database engine.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	repro "repro"
	"repro/internal/datagen"
	"repro/internal/rdf"
)

func main() {
	// ── Parse once, snapshot, reload: the offline phase made persistent.
	triples := datagen.DBLPTriples(datagen.DBLPConfig{Publications: 5000, Seed: 11})
	e := repro.New(repro.Config{K: 5})
	e.AddTriples(triples)

	var snap bytes.Buffer
	start := time.Now()
	n, err := e.SaveSnapshot(&snap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot: %d triples → %d KB in %v\n", len(triples), n/1024, time.Since(start))

	// A fresh engine (think: a new process) restores from the snapshot.
	start = time.Now()
	e2 := repro.New(repro.Config{K: 5})
	loaded, err := e2.LoadSnapshot(&snap)
	if err != nil {
		log.Fatal(err)
	}
	e2.Build()
	fmt.Printf("restore + index build: %d triples in %v\n\n", loaded, time.Since(start))

	// For comparison: the N-Triples text round trip.
	var nt bytes.Buffer
	if err := rdf.WriteNTriples(&nt, triples); err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	e3 := repro.New(repro.Config{})
	if _, err := e3.LoadNTriples(bytes.NewReader(nt.Bytes())); err != nil {
		log.Fatal(err)
	}
	e3.Build()
	fmt.Printf("(text parse + index build of the same data: %v, %d KB)\n\n",
		time.Since(start), nt.Len()/1024)

	// ── A filter query on the restored engine.
	keywords := []string{"philipp cimiano", "before 2005"}
	fmt.Printf("keyword query: %v\n", keywords)
	cands, info, err := e2.Search(keywords)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("computed %d candidates in %v\n", len(cands), info.Elapsed)
	top := cands[0]
	fmt.Printf("top: %s\n\nSPARQL:\n%s\n\n", top.Describe(), top.SPARQL())

	// ── EXPLAIN: how the database engine evaluates the chosen query.
	plan, err := e2.Explain(top)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evaluation plan (tier, constant-match estimate, atom):\n%s\n", plan)

	rs, err := e2.Execute(top)
	if err != nil {
		log.Fatal(err)
	}
	rs.SortRows()
	fmt.Printf("answers (%d):\n%s", rs.Len(), rs)
}
