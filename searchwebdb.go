// Package repro is a from-scratch Go implementation of
//
//	Tran, Wang, Rudolph, Cimiano:
//	"Top-k Exploration of Query Candidates for Efficient Keyword Search
//	 on Graph-Shaped (RDF) Data", ICDE 2009
//
// — the SearchWebDB system. Instead of computing answers directly,
// keyword queries are translated into the top-k conjunctive queries whose
// matching subgraphs connect the keywords on a summary of the data graph;
// a chosen query is then processed by the built-in database engine.
//
// Quickstart:
//
//	e := repro.New(repro.Config{})
//	e.AddTriples(triples)
//	cands, _, err := e.Search([]string{"2006", "cimiano", "aifb"})
//	answers, err := e.Execute(cands[0])
//
// The engine is safe for concurrent readers; every online operation has
// a context-aware variant (SearchContext, ExecuteContext, ...) whose
// deadline cuts off exploration and query execution promptly. A serving
// deployment loads data once and calls Seal to make the engine
// permanently read-only — cmd/serverd wraps all of this in an HTTP/JSON
// API with a result cache and Prometheus metrics (internal/server).
//
// See examples/ for runnable programs and DESIGN.md for the system
// inventory. The heavy lifting lives in internal/: package core holds the
// paper's primary contribution (Algorithms 1 and 2), and the surrounding
// packages implement every substrate the paper depends on (RDF parsing
// and storage, the summary graph, the IR keyword index, the conjunctive
// query engine, and the BANKS/bidirectional/BLINKS baselines used by the
// evaluation).
package repro

import (
	"repro/internal/engine"
	"repro/internal/scoring"
)

// ErrSealed is returned (or panicked, for mutators without an error
// return) when data is added to an engine after Seal.
var ErrSealed = engine.ErrSealed

// Config tunes the engine; see the field documentation in
// internal/engine. The zero value gives the paper's defaults (C3 scoring,
// k = 10, dmax = 12).
type Config = engine.Config

// Engine is the keyword-search engine facade.
type Engine = engine.Engine

// QueryCandidate is one computed top-k query.
type QueryCandidate = engine.QueryCandidate

// SearchInfo reports diagnostics about one search.
type SearchInfo = engine.SearchInfo

// UnmatchedKeywordsError is returned when keywords match no element.
type UnmatchedKeywordsError = engine.UnmatchedKeywordsError

// Scoring schemes (Sec. V of the paper).
const (
	ScoringPathLength = scoring.PathLength // C1
	ScoringPopularity = scoring.Popularity // C2
	ScoringMatching   = scoring.Matching   // C3
)

// New creates an empty engine with the given configuration.
func New(cfg Config) *Engine { return engine.New(cfg) }
