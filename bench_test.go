// Benchmarks regenerating the paper's evaluation (Sec. VII), one per
// table/figure. Run with:
//
//	go test -bench=. -benchmem
//
// The per-iteration benchmarks time the online operation the figure
// measures; the corresponding cmd/benchmark subcommands print the full
// paper-shaped tables.
package repro_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/scoring"
)

const (
	benchPubs = 5000
	benchSeed = 1
)

var benchEnv *bench.Env

func env(b *testing.B) *bench.Env {
	b.Helper()
	if benchEnv == nil {
		benchEnv = bench.NewDBLPEnv(benchPubs, benchSeed)
		benchEnv.Engine(scoring.Matching) // force one-time index build
	}
	return benchEnv
}

// BenchmarkFig4_MRRScoringFunctions regenerates the effectiveness study:
// one iteration evaluates the full 30-query DBLP workload under C1, C2,
// and C3 and computes the per-scheme MRR.
func BenchmarkFig4_MRRScoringFunctions(b *testing.B) {
	e := env(b)
	workload := bench.DBLPWorkload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := bench.RunFig4(e, workload, 10)
		if res.MRR[scoring.Matching] == 0 {
			b.Fatal("C3 MRR is zero")
		}
	}
}

// BenchmarkFig5_OurSolution times the paper's protocol for "Our Solution"
// on the Q1–Q10 workload: top-10 query computation plus processing the
// top queries until 10 answers are found.
func BenchmarkFig5_OurSolution(b *testing.B) {
	e := env(b)
	eng := e.Engine(scoring.Matching)
	workload := bench.PerfWorkload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range workload {
			cands, _, err := eng.SearchK(q.Keywords, 10)
			if err != nil {
				continue
			}
			if _, _, err := eng.AnswersForTop(cands, 10); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig5_Bidirect times the bidirectional-search baseline on the
// same workload (top-10 answer trees).
func BenchmarkFig5_Bidirect(b *testing.B) {
	e := env(b)
	bl := bench.Fig5BaselineRunner(e, bench.SysBidirect)
	workload := bench.PerfWorkload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range workload {
			bl(q.Keywords, 10)
		}
	}
}

// BenchmarkFig5_BLINKS300METIS and friends time the block-index baseline
// configurations of Fig. 5 (index construction excluded).
func BenchmarkFig5_BLINKS300METIS(b *testing.B) { benchBlinks(b, bench.Sys300METIS) }

// BenchmarkFig5_BLINKS300BFS times the 300-block BFS configuration.
func BenchmarkFig5_BLINKS300BFS(b *testing.B) { benchBlinks(b, bench.Sys300BFS) }

// BenchmarkFig5_BLINKS1000METIS times the 1000-block METIS configuration.
func BenchmarkFig5_BLINKS1000METIS(b *testing.B) { benchBlinks(b, bench.Sys1000METIS) }

// BenchmarkFig5_BLINKS1000BFS times the 1000-block BFS configuration.
func BenchmarkFig5_BLINKS1000BFS(b *testing.B) { benchBlinks(b, bench.Sys1000BFS) }

func benchBlinks(b *testing.B, sys bench.Fig5System) {
	e := env(b)
	bl := bench.Fig5BaselineRunner(e, sys)
	workload := bench.PerfWorkload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range workload {
			bl(q.Keywords, 10)
		}
	}
}

// BenchmarkFig6a_TopK times top-k computation as k grows (the linear-in-k
// curve of Fig. 6a), on the length-2 queries of the workload.
func BenchmarkFig6a_TopK(b *testing.B) {
	e := env(b)
	eng := e.Engine(scoring.Matching)
	var short [][]string
	for _, wq := range bench.DBLPWorkload() {
		if len(wq.Keywords) == 2 {
			short = append(short, wq.Keywords)
		}
	}
	for _, k := range []int{1, 10, 100} {
		b.Run(benchName("k", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, kws := range short {
					_, _, _ = eng.SearchK(kws, k)
				}
			}
		})
	}
}

// BenchmarkFig6b_Indexing times the off-line preprocessing (keyword index
// + graph index construction) per dataset.
func BenchmarkFig6b_Indexing(b *testing.B) {
	datasets := map[string]*bench.Env{
		"DBLP": bench.NewDBLPEnv(benchPubs, benchSeed),
		"LUBM": bench.NewLUBMEnv(1, benchSeed),
		"TAP":  bench.NewTAPEnv(25, benchSeed),
	}
	for name, e := range datasets {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bench.BuildIndexesOnce(e)
			}
		})
	}
}

// BenchmarkAblation_SummaryVsData regenerates the summarization ablation:
// exploration over the class-level summary versus a degenerate
// per-entity-class graph.
func BenchmarkAblation_SummaryVsData(b *testing.B) {
	e := bench.NewDBLPEnv(1000, benchSeed)
	workload := bench.DBLPWorkload()[:6]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.RunAblationSummary(e, workload)
	}
}

// BenchmarkAblation_Dmax sweeps the exploration depth bound.
func BenchmarkAblation_Dmax(b *testing.B) {
	e := env(b)
	workload := bench.DBLPWorkload()[:8]
	for _, dmax := range []int{6, 12} {
		b.Run(benchName("dmax", dmax), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bench.RunAblationDmax(e, workload, []int{dmax})
			}
		})
	}
}

func benchName(prefix string, v int) string {
	const digits = "0123456789"
	if v == 0 {
		return prefix + "=0"
	}
	var buf []byte
	for v > 0 {
		buf = append([]byte{digits[v%10]}, buf...)
		v /= 10
	}
	return prefix + "=" + string(buf)
}
