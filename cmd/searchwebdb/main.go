// Command searchwebdb is the interactive face of the system (the role of
// the paper's SearchWebDB demo): it loads RDF data — from a file or a
// generated dataset — and answers keyword queries with ranked conjunctive
// queries, shown as natural-language descriptions and SPARQL, optionally
// executing them.
//
// Usage:
//
//	searchwebdb -data dblp.nt -query "cimiano publication 2006"
//	searchwebdb -gen dblp -scale 2000            # interactive REPL
//
// REPL commands:
//
//	<keywords...>    search (filters like "before 2005" are recognized)
//	!exec <rank>     execute the query at the given rank of the last search
//	!explain <rank>  show the evaluation plan for a candidate
//	!k <n>           change k
//	!quit            exit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	repro "repro"
	"repro/internal/datagen"
	"repro/internal/scoring"
	"repro/internal/trace"
)

func main() {
	data := flag.String("data", "", "RDF input file (N-Triples)")
	turtle := flag.String("turtle", "", "RDF input file (Turtle)")
	gen := flag.String("gen", "", "generate a dataset instead: dblp | lubm | tap")
	scale := flag.Int("scale", 1000, "scale for -gen")
	k := flag.Int("k", 5, "number of query candidates")
	scheme := flag.String("scoring", "c3", "scoring function: c1 | c2 | c3")
	oneshot := flag.String("query", "", "run one keyword query and exit")
	execTop := flag.Bool("exec", false, "with -query: execute the top query")
	traceFlag := flag.Bool("trace", false, "print a per-stage span tree after each search/execute")
	flag.Parse()

	cfg := repro.Config{K: *k}
	switch strings.ToLower(*scheme) {
	case "c1":
		cfg.Scoring = scoring.PathLength
	case "c2":
		cfg.Scoring = scoring.Popularity
	case "c3", "":
		cfg.Scoring = scoring.Matching
	default:
		log.Fatalf("unknown scoring %q", *scheme)
	}
	e := repro.New(cfg)

	switch {
	case *data != "":
		f, err := os.Open(*data)
		if err != nil {
			log.Fatal(err)
		}
		n, err := e.LoadNTriples(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %d triples from %s\n", n, *data)
	case *turtle != "":
		f, err := os.Open(*turtle)
		if err != nil {
			log.Fatal(err)
		}
		n, err := e.LoadTurtle(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %d triples from %s\n", n, *turtle)
	case *gen != "":
		var n int
		switch *gen {
		case "dblp":
			ts := datagen.DBLPTriples(datagen.DBLPConfig{Publications: *scale})
			n = len(ts)
			e.AddTriples(ts)
		case "lubm":
			ts := datagen.LUBMTriples(datagen.LUBMConfig{Universities: *scale})
			n = len(ts)
			e.AddTriples(ts)
		case "tap":
			ts := datagen.TAPTriples(datagen.TAPConfig{InstancesPerClass: *scale})
			n = len(ts)
			e.AddTriples(ts)
		default:
			log.Fatalf("unknown dataset %q", *gen)
		}
		fmt.Printf("generated %d triples (%s)\n", n, *gen)
	default:
		log.Fatal("provide -data, -turtle, or -gen")
	}

	e.Build()
	fmt.Printf("indexes built in %v (summary graph: %d elements)\n",
		e.BuildTime, e.Summary().NumElements())

	var last []*repro.QueryCandidate
	// traced runs fn under a fresh span tree named root and prints the
	// per-stage breakdown afterward when -trace is set.
	traced := func(root string, fn func(ctx context.Context)) {
		if !*traceFlag {
			fn(context.Background())
			return
		}
		tr := trace.New(root)
		fn(tr.Context(context.Background()))
		tr.Finish()
		fmt.Print(trace.Format(tr.Tree()))
		tr.Release()
	}
	searchK := func(keywords []string, k int) {
		traced("search", func(ctx context.Context) {
			cands, info, err := e.SearchKContext(ctx, keywords, k)
			if err != nil {
				fmt.Printf("error: %v\n", err)
				return
			}
			last = cands
			fmt.Printf("%d candidates in %v:\n", len(cands), info.Elapsed)
			for i, c := range cands {
				fmt.Printf("  #%d  cost=%.3f  %s\n", i+1, c.Cost, c.Describe())
			}
		})
	}
	search := func(keywords []string) { searchK(keywords, e.Config().K) }
	executeRank := func(rank int) {
		if rank < 1 || rank > len(last) {
			fmt.Println("no such candidate; search first")
			return
		}
		c := last[rank-1]
		fmt.Println(c.SPARQL())
		traced("execute", func(ctx context.Context) {
			rs, err := e.ExecuteContext(ctx, c)
			if err != nil {
				fmt.Printf("error: %v\n", err)
				return
			}
			rs.SortRows()
			fmt.Printf("%d answers:\n%s", rs.Len(), rs)
		})
	}
	explainRank := func(rank int) {
		if rank < 1 || rank > len(last) {
			fmt.Println("no such candidate; search first")
			return
		}
		plan, err := e.Explain(last[rank-1])
		if err != nil {
			fmt.Printf("error: %v\n", err)
			return
		}
		fmt.Print(plan)
	}

	if *oneshot != "" {
		search(strings.Fields(*oneshot))
		if *execTop && len(last) > 0 {
			executeRank(1)
		}
		return
	}

	fmt.Println("enter keywords (or !exec <rank>, !k <n>, !quit):")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == "!quit":
			return
		case strings.HasPrefix(line, "!explain"):
			arg := strings.TrimSpace(strings.TrimPrefix(line, "!explain"))
			rank, err := strconv.Atoi(arg)
			if err != nil {
				fmt.Println("usage: !explain <rank>")
				continue
			}
			explainRank(rank)
		case strings.HasPrefix(line, "!exec"):
			arg := strings.TrimSpace(strings.TrimPrefix(line, "!exec"))
			rank, err := strconv.Atoi(arg)
			if err != nil {
				fmt.Println("usage: !exec <rank>")
				continue
			}
			executeRank(rank)
		case strings.HasPrefix(line, "!k"):
			arg := strings.TrimSpace(strings.TrimPrefix(line, "!k"))
			n, err := strconv.Atoi(arg)
			if err != nil || n < 1 {
				fmt.Println("usage: !k <n>")
				continue
			}
			*k = n
			fmt.Printf("k = %d (applies to new searches via SearchK)\n", n)
		default:
			searchK(strings.Fields(line), *k)
		}
	}
}
