// Command datagen generates the synthetic evaluation datasets (DBLP-,
// LUBM-, and TAP-shaped RDF) as N-Triples.
//
// Usage:
//
//	datagen -dataset dblp -scale 10000 -seed 1 -o dblp.nt
//	datagen -dataset lubm -scale 2 > lubm.nt
//	datagen -dataset tap  -scale 50 > tap.nt
//
// For dblp, scale is the number of publications; for lubm, the number of
// universities; for tap, the average instances per class.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/datagen"
	"repro/internal/rdf"
)

func main() {
	dataset := flag.String("dataset", "dblp", "dataset shape: dblp | lubm | tap")
	scale := flag.Int("scale", 1000, "scale factor (see command doc)")
	seed := flag.Int64("seed", 1, "random seed (datasets are deterministic per seed)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	nw := rdf.NewNTriplesWriter(w)
	emit := func(t rdf.Triple) {
		if err := nw.Write(t); err != nil {
			log.Fatal(err)
		}
	}

	n := 0
	counting := func(t rdf.Triple) { n++; emit(t) }
	switch *dataset {
	case "dblp":
		datagen.DBLP(datagen.DBLPConfig{Publications: *scale, Seed: *seed}, counting)
	case "lubm":
		datagen.LUBM(datagen.LUBMConfig{Universities: *scale, Seed: *seed}, counting)
	case "tap":
		datagen.TAP(datagen.TAPConfig{InstancesPerClass: *scale, Seed: *seed}, counting)
	default:
		log.Fatalf("unknown dataset %q (want dblp, lubm, or tap)", *dataset)
	}
	if err := nw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d triples\n", n)
}
