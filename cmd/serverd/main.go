// Command serverd serves keyword search over RDF data as an HTTP/JSON
// API — the production face of the SearchWebDB reproduction. It loads a
// dataset (from a file, a snapshot, or the built-in generators), builds
// the indexes once, seals the engine read-only, and serves concurrent
// search/execute/explain traffic with a result cache, request deadlines,
// and Prometheus metrics.
//
// Usage:
//
//	serverd -data dblp.nt -addr :8080
//	serverd -gen dblp -scale 2000 -addr :8080
//
// Endpoints:
//
//	POST /v1/search   {"keywords": ["cimiano", "2006"], "k": 5}
//	POST /v1/execute  {"id": "<candidate id>"} | {"keywords": [...], "rank": 0} | {"query": {...}}
//	POST /v1/explain  same request shape as /v1/execute
//	GET  /healthz     liveness and dataset size
//	GET  /stats       cache, pool, and traffic statistics (JSON)
//	GET  /metrics     Prometheus text format
//	GET  /debug/pprof/* runtime profiles (only with -pprof)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	repro "repro"
	"repro/internal/datagen"
	"repro/internal/rdf"
	"repro/internal/scoring"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "", "RDF input file (N-Triples)")
	turtle := flag.String("turtle", "", "RDF input file (Turtle)")
	snapshot := flag.String("snapshot", "", "binary store snapshot (see buildindex)")
	gen := flag.String("gen", "", "generate a dataset instead: dblp | lubm | tap")
	scale := flag.Int("scale", 1000, "scale for -gen")
	k := flag.Int("k", 10, "default number of query candidates")
	scheme := flag.String("scoring", "c3", "scoring function: c1 | c2 | c3")
	workers := flag.Int("workers", 0, "max concurrent query computations (default 2×GOMAXPROCS)")
	cacheSize := flag.Int("cache", 1024, "search-result cache entries")
	timeout := flag.Duration("timeout", 10*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 60*time.Second, "cap on client-requested deadlines")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (CPU/heap/mutex profiles of the live server)")
	flag.Parse()

	cfg := repro.Config{K: *k}
	switch strings.ToLower(*scheme) {
	case "c1":
		cfg.Scoring = scoring.PathLength
	case "c2":
		cfg.Scoring = scoring.Popularity
	case "c3", "":
		cfg.Scoring = scoring.Matching
	default:
		log.Fatalf("unknown scoring %q", *scheme)
	}
	eng := repro.New(cfg)

	loadStart := time.Now()
	switch {
	case *data != "":
		f, err := os.Open(*data)
		if err != nil {
			log.Fatal(err)
		}
		n, err := eng.LoadNTriples(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded %d triples from %s in %v", n, *data, time.Since(loadStart).Round(time.Millisecond))
	case *turtle != "":
		f, err := os.Open(*turtle)
		if err != nil {
			log.Fatal(err)
		}
		n, err := eng.LoadTurtle(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded %d triples from %s in %v", n, *turtle, time.Since(loadStart).Round(time.Millisecond))
	case *snapshot != "":
		f, err := os.Open(*snapshot)
		if err != nil {
			log.Fatal(err)
		}
		n, err := eng.LoadSnapshot(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded %d triples from snapshot %s in %v", n, *snapshot, time.Since(loadStart).Round(time.Millisecond))
	case *gen != "":
		var triples int
		emit := func(t rdf.Triple) { eng.AddTriple(t); triples++ }
		switch *gen {
		case "dblp":
			datagen.DBLP(datagen.DBLPConfig{Publications: *scale, Seed: 1}, emit)
		case "lubm":
			datagen.LUBM(datagen.LUBMConfig{Universities: *scale, Seed: 1}, emit)
		case "tap":
			datagen.TAP(datagen.TAPConfig{InstancesPerClass: *scale, Seed: 1}, emit)
		default:
			log.Fatalf("unknown dataset %q (want dblp, lubm, or tap)", *gen)
		}
		log.Printf("generated %d %s triples (scale %d) in %v", triples, *gen, *scale, time.Since(loadStart).Round(time.Millisecond))
	default:
		fmt.Fprintln(os.Stderr, "serverd: need one of -data, -turtle, -snapshot, or -gen")
		flag.Usage()
		os.Exit(2)
	}

	buildStart := time.Now()
	srv := server.New(eng, server.Config{
		Workers:         *workers,
		SearchCacheSize: *cacheSize,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
	}, runtime.GOMAXPROCS(0))
	log.Printf("indexes built in %v; engine sealed", time.Since(buildStart).Round(time.Millisecond))

	handler := srv.Handler()
	if *pprofFlag {
		// Production hot-path profiles one `go tool pprof` away:
		//   go tool pprof http://host:8080/debug/pprof/profile?seconds=10
		// Gate behind a flag — the endpoints expose internals and add a
		// mux branch, so they are opt-in.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Print("pprof enabled on /debug/pprof/")
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	go func() {
		log.Printf("serving on %s", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()
	<-done
	log.Print("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
}
