// Command serverd serves keyword search over RDF data as an HTTP/JSON
// API — the production face of the SearchWebDB reproduction. It loads a
// dataset (from a file, a snapshot, or the built-in generators), builds
// the indexes once, seals the backend read-only, and serves concurrent
// search/execute/explain traffic with a result cache, request deadlines,
// and Prometheus metrics.
//
// With -shards N (N > 1) the dataset is subject-partitioned across N
// in-process shards behind a scatter-gather coordinator (internal/shard):
// keyword mapping fans out to every shard, execution runs as a
// distributed bind-join, and results are provably identical to the
// single-engine deployment. -replicas R gives every shard group R
// failure domains with health-checked selection, hedged requests, and
// cross-replica retries; per-shard circuit breakers and degraded partial
// results (with a "coverage" block in every response) are always on for
// sharded deployments. -chaos installs the deterministic fault injector
// for resilience testing.
//
// With -snapshot pointing at a file or directory written by
// buildindex -snapshot, the server cold-starts by mmapping the built
// indexes — no ordering sort, posting build, or summary derivation —
// and is serving in milliseconds. -snapshot-mode picks the byte
// backing (mmap with lazy page-in, or heap); -snapshot-verify=false
// skips the per-section checksum pass for beyond-RAM shards.
//
// With -wal DIR the backend is live instead of sealed: POST /v1/ingest
// accepts triples (JSON, NDJSON, or N-Triples), each batch is written
// to a checksummed write-ahead log under DIR before it is acknowledged
// (-fsync picks the durability policy), and an epoch swap merges the
// accumulated delta into the indexes every -epoch-max-delta triples.
// On boot the server replays any acknowledged batches in DIR over the
// optional -snapshot base; /healthz reports {"status":"replaying"} with
// progress (503) until the recovered state is servable. -wal requires a
// single-engine backend and boots from the snapshot and/or the log
// itself — -data/-turtle/-gen do not compose with it.
//
// -checkpoint-interval / -checkpoint-wal-bytes run a background
// checkpointer that snapshots the merged state into DIR, commits a
// MANIFEST naming the covered WAL prefix, and truncates the covered
// segments, bounding both disk usage and replay time; POST
// /v1/checkpoint forces one on demand. If a MANIFEST is present on
// boot it supersedes -snapshot. -retention gives every ingested triple
// a default TTL (per-batch "ttl" in the ingest request overrides);
// expired triples are dropped at the next major merge and never
// survive a checkpoint. Disk faults degrade the server instead of
// corrupting it: a failed WAL fsync poisons the log (writes refused
// with 503 "read_only_disk" until restart), and persistent ENOSPC
// turns into 503 "disk_full" backpressure then read-only degradation —
// reads keep flowing in both cases, and /healthz reports the reason.
//
// Usage:
//
//	serverd -data dblp.nt -addr :8080
//	serverd -snapshot dblp.swdb -addr :8080
//	serverd -snapshot clusterdir/ -replicas 2 -addr :8080
//	serverd -gen dblp -scale 2000 -shards 4 -replicas 2 -addr :8080
//	serverd -gen dblp -shards 4 -chaos "error,shard=0" -addr :8080
//	serverd -wal /var/lib/swdb/wal -addr :8080
//	serverd -snapshot dblp.swdb -wal /var/lib/swdb/wal -fsync interval -addr :8080
//
// Endpoints:
//
//	POST /v1/search   {"keywords": ["cimiano", "2006"], "k": 5}
//	POST /v1/execute  {"id": "<candidate id>"} | {"keywords": [...], "rank": 0} | {"query": {...}}
//	                  (Accept: application/x-ndjson streams the answers)
//	POST /v1/explain  same request shape as /v1/execute
//	POST /v1/ingest   {"s": {...}, "p": {...}, "o": {...}} | {"triples": [...], "ttl": "24h"}
//	                  (Content-Type application/x-ndjson: one triple per line;
//	                  application/n-triples: raw N-Triples; ?ttl=24h works on
//	                  every encoding — needs -wal)
//	POST /v1/checkpoint  force a checkpoint now: snapshot + MANIFEST + WAL
//	                  truncation; returns the committed low-water mark (needs -wal)
//	GET  /healthz     liveness and dataset size
//	GET  /stats       cache, pool, traffic, latency, and runtime statistics (JSON)
//	GET  /metrics     Prometheus text format (latency histograms, runtime gauges)
//	GET  /debug/slowlog   N slowest + N most recent erroring requests with span trees
//	GET  /debug/buildinfo binary build metadata (go version, VCS revision)
//	GET  /debug/pprof/* runtime profiles (only with -pprof)
//
// Appending ?trace=1 to any /v1 request returns the request's span tree
// inline in the response (field "trace").
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	repro "repro"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/ingest"
	"repro/internal/rdf"
	"repro/internal/scoring"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/snapfmt"
	"repro/internal/snapshot"
)

// loader is the ingestion surface shared by the single engine and the
// shard builder, so the flag-driven loading below is written once.
type loader interface {
	AddTriple(t rdf.Triple)
	LoadNTriples(r io.Reader) (int, error)
	LoadTurtle(r io.Reader) (int, error)
	LoadSnapshot(r io.Reader) (int, error)
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "", "RDF input file (N-Triples)")
	turtle := flag.String("turtle", "", "RDF input file (Turtle)")
	snapPath := flag.String("snapshot", "", "boot from a snapshot written by buildindex -snapshot: an engine file maps in milliseconds, a sharded directory boots the cluster from its partition files; legacy store snapshots still load (with an index rebuild)")
	snapMode := flag.String("snapshot-mode", "auto", "snapshot byte backing: auto | mmap | heap")
	snapVerify := flag.Bool("snapshot-verify", true, "verify per-section checksums when loading a snapshot (disable for lazy paging of beyond-RAM shards)")
	walDir := flag.String("wal", "", "write-ahead log directory: serve a live backend with POST /v1/ingest, replaying any acknowledged batches found there on boot (single-engine only)")
	fsyncFlag := flag.String("fsync", "always", "WAL durability policy: always (fsync before every ack) | interval (background cadence) | never (needs -wal)")
	fsyncInterval := flag.Duration("fsync-interval", 50*time.Millisecond, "sync cadence for -fsync interval")
	epochMaxDelta := flag.Int("epoch-max-delta", 0, "delta triples that trigger an epoch swap, merging the delta into the indexes (0 = 50000; needs -wal)")
	walSegmentBytes := flag.Int64("wal-segment-bytes", 0, "WAL segment roll size in bytes (0 = default; needs -wal)")
	checkpointInterval := flag.Duration("checkpoint-interval", 0, "background checkpoint cadence: snapshot the merged state, commit a MANIFEST, truncate covered WAL segments (0 = no time trigger; needs -wal)")
	checkpointWALBytes := flag.Int64("checkpoint-wal-bytes", 0, "checkpoint once the WAL exceeds this many bytes (0 = no size trigger; needs -wal)")
	retention := flag.Duration("retention", 0, "default TTL for ingested triples — expired triples are dropped at the next major merge and never survive a checkpoint; per-batch \"ttl\" overrides (0 = keep forever; needs -wal)")
	crashPointFlag := flag.String("crash-point", "", "TESTING ONLY: arm a named crash point as \"point[:after]\" — the process SIGKILLs itself the (after+1)-th time the point is hit (needs -wal; see internal/faultinject.CrashPoints)")
	diskFaultFlag := flag.String("disk-fault", "", "TESTING ONLY: inject a filesystem error as \"op:errno[:after[:times]]\" — ops wal.write|wal.sync|checkpoint.write|checkpoint.sync, errno eio|enospc (needs -wal; see internal/faultinject.DiskOps)")
	gen := flag.String("gen", "", "generate a dataset instead: dblp | lubm | tap")
	scale := flag.Int("scale", 1000, "scale for -gen")
	k := flag.Int("k", 10, "default number of query candidates")
	scheme := flag.String("scoring", "c3", "scoring function: c1 | c2 | c3")
	shards := flag.Int("shards", 1, "subject-partitioned shards behind a scatter-gather coordinator (1 = single engine)")
	replicas := flag.Int("replicas", 1, "replica failure domains per shard group (needs -shards > 1)")
	hedgeDelay := flag.Duration("hedge-delay", 0, "fixed delay before hedging a slow shard call on a sibling replica (0 = adaptive, p95 of recent latencies)")
	requireFull := flag.Bool("require-full-coverage", false, "refuse degraded (partial shard coverage) results with 503 instead of serving them")
	chaosSpec := flag.String("chaos", "", "fault-injection spec, e.g. \"error,shard=0;delay,delay=50ms,prob=0.1\" (TESTING ONLY; needs -shards > 1)")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for probabilistic -chaos rules")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "how long shutdown waits for in-flight requests to drain")
	maxBodyBytes := flag.Int64("max-body-bytes", 1<<20, "request-body cap on the /v1 POST endpoints (larger bodies are answered 413)")
	workers := flag.Int("workers", 0, "max concurrent query computations (default 2×GOMAXPROCS)")
	parallelism := flag.Int("parallelism", 0, "max goroutines per query for per-keyword stages: lookups, oracle build, shard merges (default GOMAXPROCS)")
	oracle := flag.String("oracle", "auto", "Sec. IX distance-oracle pruning: auto | on | off")
	cacheSize := flag.Int("cache", 1024, "search-result cache entries")
	cacheTTL := flag.Duration("cache-ttl", 0, "max age of cached results (0 = no expiry; set for datasets that get swapped)")
	timeout := flag.Duration("timeout", 10*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 60*time.Second, "cap on client-requested deadlines")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (CPU/heap/mutex profiles of the live server)")
	slowlogSize := flag.Int("slowlog-size", 32, "slow-query log capacity: keeps the N slowest and N most recent erroring requests (0 = default, negative disables)")
	slowlogThreshold := flag.Duration("slowlog-threshold", 100*time.Millisecond, "minimum latency for a request to enter the slow-query log (0 = keep every request)")
	flag.Parse()

	cfg := repro.Config{K: *k, Parallelism: *parallelism}
	switch strings.ToLower(*oracle) {
	case "auto", "":
		cfg.Oracle = core.OracleAuto
	case "on":
		cfg.Oracle = core.OracleOn
	case "off":
		cfg.Oracle = core.OracleOff
	default:
		log.Fatalf("unknown -oracle mode %q (want auto, on, or off)", *oracle)
	}
	switch strings.ToLower(*scheme) {
	case "c1":
		cfg.Scoring = scoring.PathLength
	case "c2":
		cfg.Scoring = scoring.Popularity
	case "c3", "":
		cfg.Scoring = scoring.Matching
	default:
		log.Fatalf("unknown scoring %q", *scheme)
	}

	// Sniff what -snapshot points at: a current-format engine file or
	// cluster directory boots by mapping; a legacy store snapshot falls
	// back to the parse-and-rebuild path below.
	snapBoot := "" // "", "engine", or "dir"
	if *snapPath != "" {
		fi, err := os.Stat(*snapPath)
		if err != nil {
			log.Fatal(err)
		}
		if fi.IsDir() {
			snapBoot = "dir"
		} else {
			kind, err := snapfmt.Sniff(*snapPath)
			if err != nil {
				log.Fatal(err)
			}
			switch kind {
			case "snapshot":
				snapBoot = "engine"
			case "legacy":
				log.Printf("deprecated: %s is a legacy store snapshot — the indexes will be re-derived at startup; rebuild it with buildindex -snapshot for mmap cold-start", *snapPath)
			default:
				log.Fatalf("%s is not a snapshot in either format", *snapPath)
			}
		}
	}
	var mode snapfmt.Mode
	switch strings.ToLower(*snapMode) {
	case "auto", "":
		mode = snapfmt.ModeAuto
	case "mmap":
		mode = snapfmt.ModeMmap
	case "heap":
		mode = snapfmt.ModeHeap
	default:
		log.Fatalf("unknown -snapshot-mode %q (want auto, mmap, or heap)", *snapMode)
	}
	loadOpts := snapshot.LoadOptions{Mode: mode, SkipVerify: !*snapVerify}

	if *walDir != "" {
		switch {
		case *shards > 1 || *replicas > 1:
			log.Fatal("-wal needs a single-engine backend (live ingestion and the sharded coordinator do not compose)")
		case *chaosSpec != "":
			log.Fatal("-chaos lives at the shard transport seam; crash-test the ingest path with -crash-point instead")
		case *data != "" || *turtle != "" || *gen != "":
			log.Fatal("-wal boots from -snapshot and/or the log itself; load data through POST /v1/ingest or bake a base snapshot with buildindex")
		case snapBoot == "dir":
			log.Fatal("-wal needs a single-engine base; pass an engine snapshot file, not a cluster directory")
		case *snapPath != "" && snapBoot != "engine":
			log.Fatal("a legacy store snapshot cannot base a WAL boot; rebuild it with buildindex -snapshot")
		}
	} else {
		switch {
		case *crashPointFlag != "":
			log.Fatal("-crash-point instruments the WAL/epoch write path and needs -wal")
		case *diskFaultFlag != "":
			log.Fatal("-disk-fault injects WAL/checkpoint filesystem errors and needs -wal")
		case *checkpointInterval > 0 || *checkpointWALBytes > 0:
			log.Fatal("-checkpoint-interval/-checkpoint-wal-bytes compact the write-ahead log and need -wal")
		case *retention > 0:
			log.Fatal("-retention expires live-ingested triples and needs -wal")
		case *walSegmentBytes > 0:
			log.Fatal("-wal-segment-bytes sizes write-ahead log segments and needs -wal")
		}
	}

	applyChaos := func(cl *shard.Cluster) {
		if *chaosSpec == "" {
			return
		}
		rules, err := faultinject.Parse(*chaosSpec)
		if err != nil {
			log.Fatal(err)
		}
		cl.SetInjector(faultinject.New(*chaosSeed, rules...))
		log.Printf("WARNING: fault injection ACTIVE (seed %d) — this server deliberately fails requests; never run production traffic with -chaos", *chaosSeed)
		for i, r := range rules {
			log.Printf("  chaos rule %d: %s", i, r)
		}
	}

	var (
		backend  engine.Queryer
		dst      loader
		builder  *shard.Builder
		snapInfo *snapshot.Info
	)
	switch {
	case *walDir != "":
		// Live path: ingest.Boot below loads the snapshot (if any) and
		// replays the log; nothing to build here.
	case snapBoot == "engine":
		if *shards > 1 {
			log.Fatal("-shards conflicts with an engine snapshot file; write a sharded snapshot with buildindex -shards N -snapshot DIR and pass the directory")
		}
		if *replicas > 1 {
			log.Fatal("-replicas needs a sharded backend (replica groups exist per shard)")
		}
		if *chaosSpec != "" {
			log.Fatal("-chaos needs a sharded backend (the injector lives at the shard transport seam)")
		}
		eng, info, err := snapshot.LoadEngine(*snapPath, cfg, loadOpts)
		if err != nil {
			log.Fatal(err)
		}
		backend, snapInfo = eng, info
		log.Printf("booted engine from snapshot %s in %v (%s-backed, format v%d, %.1f MB) — no index rebuild",
			*snapPath, info.LoadDuration.Round(time.Microsecond), info.Mode, info.FormatVersion, float64(info.TotalBytes)/(1<<20))
	case snapBoot == "dir":
		cl, info, err := shard.NewBuilder(1, cfg).
			Replicas(*replicas).
			Resilience(shard.ResilienceConfig{HedgeDelay: *hedgeDelay}).
			LoadSnapshotDir(*snapPath, loadOpts)
		if err != nil {
			log.Fatal(err)
		}
		if *shards > 1 && *shards != cl.NumShards() {
			log.Printf("note: -shards %d ignored — snapshot directory %s holds %d shards", *shards, *snapPath, cl.NumShards())
		}
		backend, snapInfo = cl, info
		log.Printf("booted %d-shard cluster × %d replicas from snapshot %s in %v (%s-backed, format v%d, %.1f MB) — no index rebuild",
			cl.NumShards(), cl.ReplicaCount(), *snapPath, info.LoadDuration.Round(time.Microsecond), info.Mode, info.FormatVersion, float64(info.TotalBytes)/(1<<20))
		applyChaos(cl)
	}

	if *walDir != "" || snapBoot != "" {
		// Live boot, or booted from a mapped snapshot: skip the
		// load-and-build pipeline.
	} else if *shards > 1 {
		builder = shard.NewBuilder(*shards, cfg).
			Replicas(*replicas).
			Resilience(shard.ResilienceConfig{HedgeDelay: *hedgeDelay})
		dst = builder
	} else {
		if *replicas > 1 {
			log.Fatal("-replicas needs -shards > 1 (replica groups exist per shard)")
		}
		if *chaosSpec != "" {
			log.Fatal("-chaos needs -shards > 1 (the injector lives at the shard transport seam)")
		}
		eng := repro.New(cfg)
		backend = eng
		dst = eng
	}

	buildStart := time.Now()
	if *walDir == "" && snapBoot == "" {
		loadStart := time.Now()
		loadFile := func(path string, load func(io.Reader) (int, error), what string) {
			f, err := os.Open(path)
			if err != nil {
				log.Fatal(err)
			}
			n, err := load(f)
			f.Close()
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("loaded %d triples from %s %s in %v", n, what, path, time.Since(loadStart).Round(time.Millisecond))
		}
		switch {
		case *data != "":
			loadFile(*data, dst.LoadNTriples, "N-Triples file")
		case *turtle != "":
			loadFile(*turtle, dst.LoadTurtle, "Turtle file")
		case *snapPath != "":
			loadFile(*snapPath, dst.LoadSnapshot, "legacy snapshot")
		case *gen != "":
			var triples int
			emit := func(t rdf.Triple) { dst.AddTriple(t); triples++ }
			switch *gen {
			case "dblp":
				datagen.DBLP(datagen.DBLPConfig{Publications: *scale, Seed: 1}, emit)
			case "lubm":
				datagen.LUBM(datagen.LUBMConfig{Universities: *scale, Seed: 1}, emit)
			case "tap":
				datagen.TAP(datagen.TAPConfig{InstancesPerClass: *scale, Seed: 1}, emit)
			default:
				log.Fatalf("unknown dataset %q (want dblp, lubm, or tap)", *gen)
			}
			log.Printf("generated %d %s triples (scale %d) in %v", triples, *gen, *scale, time.Since(loadStart).Round(time.Millisecond))
		default:
			fmt.Fprintln(os.Stderr, "serverd: need one of -data, -turtle, -snapshot, or -gen")
			flag.Usage()
			os.Exit(2)
		}

		buildStart = time.Now()
		if builder != nil {
			cl := builder.Build()
			backend = cl
			log.Printf("partitioned into %d shards × %d replicas %v; indexes built in %v",
				cl.NumShards(), cl.ReplicaCount(), cl.ShardSizes(), time.Since(buildStart).Round(time.Millisecond))
			applyChaos(cl)
		}
	}
	serverCfg := server.Config{
		Workers:             *workers,
		SearchCacheSize:     *cacheSize,
		CacheTTL:            *cacheTTL,
		DefaultTimeout:      *timeout,
		MaxTimeout:          *maxTimeout,
		SlowlogSize:         *slowlogSize,
		SlowlogThreshold:    *slowlogThreshold,
		MaxBodyBytes:        *maxBodyBytes,
		RequireFullCoverage: *requireFull,
	}
	wrapPprof := func(h http.Handler) http.Handler {
		if !*pprofFlag {
			return h
		}
		// Production hot-path profiles one `go tool pprof` away:
		//   go tool pprof http://host:8080/debug/pprof/profile?seconds=10
		// Gate behind a flag — the endpoints expose internals and add a
		// mux branch, so they are opt-in.
		mux := http.NewServeMux()
		mux.Handle("/", h)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		log.Print("pprof enabled on /debug/pprof/")
		return mux
	}

	// The server behind the listener. On the live path it appears only
	// once WAL replay finishes, so shutdown reads it through the pointer.
	var (
		srvPtr  atomic.Pointer[server.Server]
		ckptPtr atomic.Pointer[ingest.Checkpointer]
		handler http.Handler
	)
	if *walDir != "" {
		policy, err := ingest.ParseFsyncPolicy(*fsyncFlag)
		if err != nil {
			log.Fatal(err)
		}
		var crash *faultinject.CrashSet
		if *crashPointFlag != "" {
			point, afterStr, _ := strings.Cut(*crashPointFlag, ":")
			after := 0
			if afterStr != "" {
				if after, err = strconv.Atoi(afterStr); err != nil {
					log.Fatalf("-crash-point %q is not \"point[:after]\": %v", *crashPointFlag, err)
				}
			}
			crash = faultinject.NewCrashSet()
			crash.Handler = func(point string) {
				log.Printf("crash point %s fired — SIGKILL", point)
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
			}
			if err := crash.Arm(point, after); err != nil {
				log.Fatal(err)
			}
			log.Printf("WARNING: crash point %s ARMED (fires on hit %d) — this process will kill itself; never run production traffic with -crash-point", point, after+1)
		}
		var disk *faultinject.DiskSet
		if *diskFaultFlag != "" {
			disk, err = faultinject.ParseDiskFault(*diskFaultFlag)
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("WARNING: disk fault %s ARMED — this process deliberately fails WAL/checkpoint I/O; never run production traffic with -disk-fault", *diskFaultFlag)
		}
		// Listen immediately: the gate answers 503 with replay progress
		// on /healthz until the recovered state is servable.
		gate := server.NewGate()
		handler = gate
		bootCfg := ingest.BootConfig{
			SnapshotPath: *snapPath,
			WALDir:       *walDir,
			Live: ingest.Config{
				Engine:        cfg,
				EpochMaxDelta: *epochMaxDelta,
				Retention:     *retention,
				Crash:         crash,
				Disk:          disk,
			},
			WAL: ingest.WALOptions{
				Fsync:         policy,
				FsyncInterval: *fsyncInterval,
				SegmentBytes:  *walSegmentBytes,
			},
			Snapshot: loadOpts,
			Progress: gate.SetProgress,
		}
		go func() {
			l, info, err := ingest.Boot(bootCfg)
			if err != nil {
				log.Fatalf("wal boot refused: %v", err)
			}
			scfg := serverCfg
			scfg.Live = l
			scfg.Snapshot = info.SnapshotInfo
			srv := server.New(l, scfg, runtime.GOMAXPROCS(0))
			srvPtr.Store(srv)
			gate.Ready(wrapPprof(srv.Handler()))
			repaired := ""
			if info.RepairedBytes > 0 {
				repaired = fmt.Sprintf("; repaired a %d-byte torn tail in %s", info.RepairedBytes, info.RepairedFile)
			}
			log.Printf("live backend up from %s in %v: %d triples at epoch %d (replayed %d batches, %d triples%s); fsync=%s, epoch swap at %d delta triples",
				info.Source, info.BootDuration.Round(time.Millisecond), l.NumTriples(), l.Epoch(),
				info.ReplayedBatches, info.ReplayedTriples, repaired, policy, l.EpochMaxDelta())
			if *checkpointInterval > 0 || *checkpointWALBytes > 0 || *retention > 0 {
				// The loop also forces retention merges once enough expired
				// triples pile up, so -retention alone is reason to run it.
				ckptPtr.Store(ingest.StartCheckpointer(l, ingest.CheckpointerConfig{
					Interval: *checkpointInterval,
					WALBytes: *checkpointWALBytes,
					Logf:     log.Printf,
				}))
				log.Printf("checkpointer running: interval=%v wal-bytes=%d retention=%v (POST /v1/checkpoint forces one)",
					*checkpointInterval, *checkpointWALBytes, *retention)
			}
		}()
	} else {
		scfg := serverCfg
		scfg.Snapshot = snapInfo
		srv := server.New(backend, scfg, runtime.GOMAXPROCS(0))
		srvPtr.Store(srv)
		log.Printf("backend sealed (%d triples); serving ready in %v",
			backend.NumTriples(), time.Since(buildStart).Round(time.Millisecond))
		handler = wrapPprof(srv.Handler())
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	go func() {
		log.Printf("serving on %s", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()
	<-done
	log.Printf("shutting down (draining in-flight requests for up to %v)", *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	// Stop the background checkpointer before the process exits so a
	// checkpoint mid-commit finishes (or cleanly never starts).
	if ckpt := ckptPtr.Load(); ckpt != nil {
		ckpt.Stop()
	}
	// Flush the slow-query log so captured span trees outlive the process
	// (nil while a live boot was still replaying — nothing captured yet).
	if srv := srvPtr.Load(); srv != nil && *slowlogSize >= 0 {
		log.Print("slowlog at shutdown:")
		if err := srv.WriteSlowlog(os.Stderr); err != nil {
			log.Printf("slowlog flush: %v", err)
		}
	}
}
