// Command benchmark regenerates the paper's evaluation artifacts on the
// synthetic datasets. Each subcommand prints a table shaped like the
// corresponding figure of Sec. VII; EXPERIMENTS.md records how the shapes
// compare to the paper's.
//
// Usage:
//
//	benchmark explore           exploration hot path (ns/op, B/op, allocs/op)
//	benchmark exec              candidate execution: pooled core vs preserved
//	                            reference vs 2-shard cluster (before/after +
//	                            row-set cross-check)
//	benchmark shard             scatter-gather cluster vs single engine (1/2/4 shards)
//	benchmark snapshot          cold-start: gob-rebuild vs mmap/heap snapshot boot
//	                            (DBLP + LUBM, wall time + heap delta + round-trip
//	                            result cross-check, writes BENCH_snapshot.json)
//	benchmark fig4              effectiveness: MRR of C1/C2/C3 (DBLP + TAP)
//	benchmark fig5              query performance vs baselines (Q1–Q10)
//	benchmark fig6a             search time vs k and query length
//	benchmark fig6b             index sizes and build times (3 datasets)
//	benchmark ablation-summary  summary graph vs no-summarization
//	benchmark ablation-dmax     exploration depth sweep
//	benchmark ablation-cap      per-element cursor cap sweep
//	benchmark ablation-scale    query computation vs data size
//	benchmark ablation-oracle   Sec. IX connectivity/score oracle
//	benchmark all               everything above
//
// Flags scale the datasets (defaults keep each subcommand under ~a
// minute on a laptop):
//
//	-pubs N    DBLP publications (default 10000)
//	-unis N    LUBM universities (default 1)
//	-tap N     TAP instances per class (default 25)
//	-seed N    dataset seed (default 1)
//	-k N       top-k override for explore/shard (default: per-case values;
//	           k=1 and k=50 show how the oracle pruning shifts with the
//	           candidate budget)
//	-iters N   fixed iterations per explore/shard case (CI smoke mode;
//	           0 = testing.Benchmark auto-calibration)
//	-benchdir  directory for machine-readable BENCH_<name>.json files
//	           (default "."); the explore subcommand writes
//	           BENCH_explore.json next to its human table so the hot-path
//	           perf trajectory (ns/op, B/op, allocs/op, cursors popped) is
//	           tracked across PRs. explore and shard emit oracle-on (the
//	           default), oracle-off, and serial-parallelism variant rows,
//	           and fail if any variant changes any result
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/bench"
)

func main() {
	pubs := flag.Int("pubs", 10000, "DBLP scale (publications)")
	unis := flag.Int("unis", 1, "LUBM scale (universities)")
	tapScale := flag.Int("tap", 25, "TAP scale (instances per class)")
	seed := flag.Int64("seed", 1, "dataset seed")
	iters := flag.Int("iters", 0, "fixed iterations per explore/shard-bench case (0 = auto benchtime; CI smoke uses a small value)")
	k := flag.Int("k", 0, "top-k override for the explore and shard subcommands (0 = per-case defaults; try 1 or 50 to see pruning shift)")
	benchdir := flag.String("benchdir", ".", "directory for BENCH_<name>.json output")
	flag.Parse()

	cmd := flag.Arg(0)
	if cmd == "" {
		flag.Usage()
		os.Exit(2)
	}

	dblpEnv := func() *bench.Env {
		fmt.Fprintf(os.Stderr, "building DBLP(%d) environment...\n", *pubs)
		return bench.NewDBLPEnv(*pubs, *seed)
	}

	run := func(name string) {
		switch name {
		case "explore":
			env := dblpEnv()
			results, mismatches := bench.RunExploreBench(env, bench.DefaultExploreBenchCases(*k), *iters)
			fmt.Println(bench.FormatExploreBench(results))
			for _, m := range mismatches {
				fmt.Fprintf(os.Stderr, "ORACLE RESULT MISMATCH: %s\n", m)
			}
			if len(mismatches) > 0 {
				log.Fatalf("%d oracle-on/oracle-off result mismatches", len(mismatches))
			}
			out := filepath.Join(*benchdir, "BENCH_explore.json")
			if err := bench.WriteBenchJSON(out, results); err != nil {
				log.Fatalf("writing %s: %v", out, err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", out)
		case "exec":
			env := dblpEnv()
			fmt.Fprintln(os.Stderr, "building 2-shard cluster and measuring execute (pooled vs reference vs cluster)...")
			results, mismatches := bench.RunExecBench(env, bench.PerfWorkload(), 1000, *iters)
			fmt.Println(bench.FormatExecBench(results))
			for _, m := range mismatches {
				fmt.Fprintf(os.Stderr, "EXEC EQUIVALENCE MISMATCH: %s\n", m)
			}
			if len(mismatches) > 0 {
				log.Fatalf("%d engine/reference/cluster execute mismatches", len(mismatches))
			}
			out := filepath.Join(*benchdir, "BENCH_exec.json")
			if err := bench.WriteBenchJSON(out, results); err != nil {
				log.Fatalf("writing %s: %v", out, err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", out)
		case "shard":
			env := dblpEnv()
			fmt.Fprintln(os.Stderr, "building shard clusters (1, 2, 4 shards) and engine A/B variants...")
			results, mismatches := bench.RunShardBench(env, bench.PerfWorkload(), []int{0, 1, 2, 4}, 1000, *iters, *k)
			fmt.Println(bench.FormatShardBench(results))
			for _, m := range mismatches {
				fmt.Fprintf(os.Stderr, "EQUIVALENCE MISMATCH: %s\n", m)
			}
			if len(mismatches) > 0 {
				log.Fatalf("%d cluster/engine equivalence mismatches", len(mismatches))
			}
			out := filepath.Join(*benchdir, "BENCH_shard.json")
			if err := bench.WriteBenchJSON(out, results); err != nil {
				log.Fatalf("writing %s: %v", out, err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", out)
		case "snapshot":
			fmt.Fprintln(os.Stderr, "building DBLP + LUBM and measuring cold-start (gob-rebuild vs mmap vs heap)...")
			envs := []*bench.Env{
				bench.NewDBLPEnv(*pubs, *seed),
				bench.NewLUBMEnv(*unis, *seed),
			}
			dir, err := os.MkdirTemp("", "snapbench")
			if err != nil {
				log.Fatal(err)
			}
			defer os.RemoveAll(dir)
			results, mismatches, err := bench.RunSnapshotBench(envs, dir)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(bench.FormatSnapshotBench(results))
			for _, m := range mismatches {
				fmt.Fprintf(os.Stderr, "SNAPSHOT ROUND-TRIP MISMATCH: %s\n", m)
			}
			if len(mismatches) > 0 {
				log.Fatalf("%d snapshot/rebuild result mismatches", len(mismatches))
			}
			out := filepath.Join(*benchdir, "BENCH_snapshot.json")
			if err := bench.WriteBenchJSON(out, results); err != nil {
				log.Fatalf("writing %s: %v", out, err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", out)
		case "fig4":
			env := dblpEnv()
			fmt.Println(bench.RunFig4(env, bench.DBLPWorkload(), 10))
			tapEnv := bench.NewTAPEnv(*tapScale, *seed)
			fmt.Println(bench.RunFig4(tapEnv, bench.TAPWorkload(), 10))
		case "fig5":
			env := dblpEnv()
			fmt.Fprintln(os.Stderr, "building baseline indexes (4 BLINKS configurations)...")
			fmt.Println(bench.RunFig5(env, bench.PerfWorkload(), 10))
		case "fig6a":
			env := dblpEnv()
			fmt.Println(bench.RunFig6a(env, bench.DBLPWorkload(), []int{1, 5, 10, 20, 50, 100}))
		case "fig6b":
			envs := []*bench.Env{
				bench.NewDBLPEnv(*pubs, *seed),
				bench.NewLUBMEnv(*unis, *seed),
				bench.NewTAPEnv(*tapScale, *seed),
			}
			fmt.Println(bench.RunFig6b(envs))
		case "ablation-summary":
			env := bench.NewDBLPEnv(min(*pubs, 2000), *seed)
			fmt.Println(bench.RunAblationSummary(env, bench.DBLPWorkload()[:10]))
		case "ablation-dmax":
			env := dblpEnv()
			fmt.Println(bench.RunAblationDmax(env, bench.DBLPWorkload(), []int{4, 6, 8, 12, 16}))
		case "ablation-cap":
			env := dblpEnv()
			fmt.Println(bench.RunAblationCap(env, bench.DBLPWorkload(), []int{1, 2, 5, 10, 50}))
		case "ablation-scale":
			fmt.Fprintln(os.Stderr, "building DBLP environments at three scales...")
			fmt.Println(bench.RunScaling([]int{2000, 10000, 30000}, *seed))
		case "ablation-oracle":
			env := dblpEnv()
			fmt.Println(bench.RunAblationOracle(env, bench.DBLPWorkload()))
		default:
			log.Fatalf("unknown subcommand %q", name)
		}
	}

	if cmd == "all" {
		for _, name := range []string{"explore", "exec", "shard", "snapshot", "fig4", "fig5", "fig6a", "fig6b",
			"ablation-summary", "ablation-dmax", "ablation-cap",
			"ablation-scale", "ablation-oracle"} {
			run(name)
		}
		return
	}
	run(cmd)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
