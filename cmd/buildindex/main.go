// Command buildindex runs the off-line preprocessing of Fig. 2 on an RDF
// file and reports the index statistics of the paper's Fig. 6b: keyword
// index size (dominated by V-vertices), graph index size (dominated by
// the number of classes), and indexing time.
//
// With -snapshot it also persists the built indexes as a mmap-able
// snapshot (internal/snapfmt): serverd then cold-starts by mapping the
// file instead of re-deriving orderings, postings, and the summary
// graph. With -shards N the stream is partitioned exactly as a sharded
// deployment would and -snapshot names a directory receiving a catalog
// plus one partition file per shard.
//
// Usage:
//
//	buildindex -data dblp.nt
//	buildindex -data example.ttl -format turtle
//	buildindex -data dblp.nt -snapshot dblp.swdb       # engine snapshot
//	buildindex -data dblp.nt -shards 4 -snapshot dir/  # sharded snapshot
//	buildindex -data dblp.swdb -format snapshot        # re-ingest one
//	buildindex -data dblp.nt -snapshot dblp.swdb -wal wal/  # + empty WAL
//
// -wal DIR initializes an empty write-ahead log pinned to the snapshot's
// triple count, so `serverd -snapshot FILE -wal DIR` boots a live,
// ingest-capable server from a fully pre-built base.
//
// -compact DIR runs an offline checkpoint of an existing live WAL
// directory: it boots the store exactly as serverd would (manifest,
// snapshot, and log), merges every replayed batch, writes a fresh
// snapshot + MANIFEST, and truncates the covered segments — so the next
// serverd boot replays nothing. -compact composes with no other flag.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	repro "repro"
	ingestpkg "repro/internal/ingest"
	"repro/internal/rdf"
	"repro/internal/shard"
	"repro/internal/snapfmt"
	"repro/internal/snapshot"
	"repro/internal/store"
)

// sink is the ingestion surface shared by the single engine and the
// shard builder.
type sink interface {
	AddTriple(t rdf.Triple)
	LoadNTriples(r io.Reader) (int, error)
	LoadTurtle(r io.Reader) (int, error)
	LoadSnapshot(r io.Reader) (int, error)
}

func main() {
	data := flag.String("data", "", "RDF input file")
	format := flag.String("format", "ntriples", "input format: ntriples | turtle | snapshot (both snapshot generations, sniffed by magic)")
	snapOut := flag.String("snapshot", "", "write a mmap-able index snapshot: an engine file, or with -shards > 1 a directory of catalog + per-shard partition files")
	shards := flag.Int("shards", 1, "partition the snapshot across N shards (-snapshot then names a directory)")
	legacyOut := flag.String("store-snapshot", "", "write the legacy gob store snapshot of the parsed triples (deprecated: -snapshot persists the built indexes instead)")
	walDir := flag.String("wal", "", "initialize an empty write-ahead log directory next to the engine snapshot, ready for serverd -wal (single-engine only; needs -snapshot)")
	compactDir := flag.String("compact", "", "offline-checkpoint an existing live WAL directory: merge every batch, install a fresh snapshot + MANIFEST, truncate covered segments")
	compactBase := flag.String("base", "", "base engine snapshot for -compact when the WAL directory has no MANIFEST yet (same file serverd booted with)")
	flag.Parse()
	if *compactDir != "" {
		if *data != "" || *snapOut != "" || *legacyOut != "" || *walDir != "" || *shards > 1 {
			log.Fatal("-compact composes only with -base; it reads and rewrites the WAL directory in place")
		}
		compact(*compactDir, *compactBase)
		return
	}
	if *compactBase != "" {
		log.Fatal("-base qualifies -compact; it has no meaning in a build run")
	}
	if *data == "" {
		log.Fatal("missing -data file")
	}
	if *shards > 1 && *snapOut == "" {
		log.Fatal("-shards needs -snapshot DIR (the partitioned output is the snapshot directory)")
	}
	if *shards > 1 && *legacyOut != "" {
		log.Fatal("-store-snapshot applies to the single-engine build only")
	}
	if *walDir != "" && (*shards > 1 || *snapOut == "") {
		log.Fatal("-wal initializes a log for a single-engine snapshot; it needs -snapshot FILE and no -shards")
	}

	var (
		e       *repro.Engine
		builder *shard.Builder
		dst     sink
	)
	if *shards > 1 {
		builder = shard.NewBuilder(*shards, repro.Config{})
		dst = builder
	} else {
		e = repro.New(repro.Config{})
		dst = e
	}

	n, err := ingest(dst, *data, *format)
	if err != nil {
		log.Fatal(err)
	}

	if builder != nil {
		cl := builder.Build()
		if err := cl.WriteSnapshotDir(*snapOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("data:           %d triples across %d shards %v\n", cl.NumTriples(), cl.NumShards(), cl.ShardSizes())
		fmt.Printf("snapshot:       %s (%d KB: catalog + %d shard files)\n", *snapOut, dirSizeKB(*snapOut), cl.NumShards())
		fmt.Printf("indexing time:  %v\n", cl.BuildDuration())
		return
	}

	if *legacyOut != "" {
		out, err := os.Create(*legacyOut)
		if err != nil {
			log.Fatal(err)
		}
		written, err := e.SaveSnapshot(out)
		if err == nil {
			err = out.Close()
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("store snapshot: %s (%d KB, legacy format — serverd re-derives the indexes from it)\n", *legacyOut, written/1024)
	}

	e.Build()
	if *snapOut != "" {
		if err := snapshot.WriteEngine(*snapOut, e); err != nil {
			log.Fatal(err)
		}
		fi, err := os.Stat(*snapOut)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("snapshot:       %s (%d KB, mmap-able)\n", *snapOut, fi.Size()/1024)
		if *walDir != "" {
			// An empty log pinned to the snapshot's triple count: serverd
			// -snapshot FILE -wal DIR then boots live without a replay.
			w, err := ingestpkg.Create(*walDir, int64(e.NumTriples()), ingestpkg.WALOptions{})
			if err != nil {
				log.Fatal(err)
			}
			if err := w.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wal:            %s (empty, pinned to %d base triples — serve with: serverd -snapshot %s -wal %s)\n",
				*walDir, e.NumTriples(), *snapOut, *walDir)
		}
	}

	g := e.Graph().Stats()
	k := e.KeywordIndex().Stats()

	fmt.Printf("data:           %d triples (%d E-vertices, %d C-vertices, %d V-vertices)\n",
		n, g.EVertices, g.CVertices, g.VVertices)
	fmt.Printf("edges:          %d R-edges (%d labels), %d A-edges (%d labels), %d type, %d subclass\n",
		g.REdges, g.RLabels, g.AEdges, g.ALabels, g.TypeEdges, g.SubEdges)
	fmt.Printf("keyword index:  %d refs (%d value, %d class, %d attr, %d rel), %d terms, %d postings, ~%d KB\n",
		k.Refs, k.ValueRefs, k.ClassRefs, k.AttrRefs, k.RelRefs, k.Terms, k.Postings, k.EstimatedBytes()/1024)
	fmt.Printf("graph index:    %d elements (%d vertices)\n",
		e.Summary().NumElements(), e.Summary().NumVertices())
	fmt.Printf("indexing time:  %v\n", e.BuildTime)
}

// compact boots a live WAL directory the way serverd would and runs one
// checkpoint, leaving a snapshot + MANIFEST and a truncated log behind.
func compact(dir, base string) {
	l, info, err := ingestpkg.Boot(ingestpkg.BootConfig{
		SnapshotPath: base,
		WALDir:       dir,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	fmt.Printf("booted:         %s (%d triples, replayed %d batches, low water %d)\n",
		info.Source, l.NumTriples(), info.ReplayedBatches, info.LowWater)
	res, err := l.Checkpoint()
	if err != nil {
		log.Fatal(err)
	}
	if res.Skipped {
		fmt.Println("checkpoint:     skipped — the manifest already covers every batch")
		return
	}
	fmt.Printf("checkpoint:     low water %d, %d triples -> %s", res.LowWater, res.Triples, res.Snapshot)
	if res.Expired > 0 {
		fmt.Printf(" (%d expired triples dropped)", res.Expired)
	}
	fmt.Println()
	fmt.Printf("log truncated:  %d segments, %d KB reclaimed in %v\n",
		res.SegmentsRemoved, res.BytesRemoved/1024, res.Duration)
	fmt.Printf("next boot:      serverd -wal %s replays nothing\n", dir)
}

// ingest loads the input file into dst, sniffing which snapshot
// generation a -format snapshot file is.
func ingest(dst sink, path, format string) (int, error) {
	if format == "snapshot" {
		kind, err := snapfmt.Sniff(path)
		if err != nil {
			return 0, err
		}
		if kind == "snapshot" {
			// A current-format engine snapshot: boot it and re-ingest its
			// triples, so an existing snapshot can be re-partitioned or
			// re-snapshotted. The mapping stays open until process exit —
			// the decoded terms alias it.
			src, _, err := snapshot.LoadEngine(path, repro.Config{}, snapshot.LoadOptions{})
			if err != nil {
				return 0, err
			}
			st := src.Store()
			st.ForEach(func(t store.IDTriple) { dst.AddTriple(st.Decode(t)) })
			return st.Len(), nil
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	switch format {
	case "ntriples":
		return dst.LoadNTriples(f)
	case "turtle":
		return dst.LoadTurtle(f)
	case "snapshot":
		return dst.LoadSnapshot(f)
	default:
		return 0, fmt.Errorf("unknown format %q", format)
	}
}

// dirSizeKB sums the sizes of a snapshot directory's files.
func dirSizeKB(dir string) int64 {
	var total int64
	filepath.Walk(dir, func(_ string, fi os.FileInfo, err error) error {
		if err == nil && !fi.IsDir() {
			total += fi.Size()
		}
		return nil
	})
	return total / 1024
}
