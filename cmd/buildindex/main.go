// Command buildindex runs the off-line preprocessing of Fig. 2 on an RDF
// file and reports the index statistics of the paper's Fig. 6b: keyword
// index size (dominated by V-vertices), graph index size (dominated by
// the number of classes), and indexing time.
//
// Usage:
//
//	buildindex -data dblp.nt
//	buildindex -data example.ttl -format turtle
//	buildindex -data dblp.nt -snapshot dblp.snap   # persist binary snapshot
//	buildindex -data dblp.snap -format snapshot    # load one back
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	repro "repro"
)

func main() {
	data := flag.String("data", "", "RDF input file")
	format := flag.String("format", "ntriples", "input format: ntriples | turtle | snapshot")
	snapshot := flag.String("snapshot", "", "write a binary snapshot of the parsed data to this file")
	flag.Parse()
	if *data == "" {
		log.Fatal("missing -data file")
	}

	f, err := os.Open(*data)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	e := repro.New(repro.Config{})
	var n int
	switch *format {
	case "ntriples":
		n, err = e.LoadNTriples(f)
	case "turtle":
		n, err = e.LoadTurtle(f)
	case "snapshot":
		n, err = e.LoadSnapshot(f)
	default:
		log.Fatalf("unknown format %q", *format)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *snapshot != "" {
		out, err := os.Create(*snapshot)
		if err != nil {
			log.Fatal(err)
		}
		written, err := e.SaveSnapshot(out)
		if err == nil {
			err = out.Close()
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("snapshot:       %s (%d KB)\n", *snapshot, written/1024)
	}

	e.Build()
	g := e.Graph().Stats()
	k := e.KeywordIndex().Stats()

	fmt.Printf("data:           %d triples (%d E-vertices, %d C-vertices, %d V-vertices)\n",
		n, g.EVertices, g.CVertices, g.VVertices)
	fmt.Printf("edges:          %d R-edges (%d labels), %d A-edges (%d labels), %d type, %d subclass\n",
		g.REdges, g.RLabels, g.AEdges, g.ALabels, g.TypeEdges, g.SubEdges)
	fmt.Printf("keyword index:  %d refs (%d value, %d class, %d attr, %d rel), %d terms, %d postings, ~%d KB\n",
		k.Refs, k.ValueRefs, k.ClassRefs, k.AttrRefs, k.RelRefs, k.Terms, k.Postings, k.EstimatedBytes()/1024)
	fmt.Printf("graph index:    %d elements (%d vertices)\n",
		e.Summary().NumElements(), e.Summary().NumVertices())
	fmt.Printf("indexing time:  %v\n", e.BuildTime)
}
