package repro_test

import (
	"errors"
	"strings"
	"testing"

	repro "repro"
	"repro/internal/rdf"
)

// TestPublicAPI exercises the re-exported facade exactly as the README's
// quickstart does.
func TestPublicAPI(t *testing.T) {
	e := repro.New(repro.Config{K: 5, Scoring: repro.ScoringMatching})
	if _, err := e.LoadTurtle(strings.NewReader(rdf.Fig1ExampleTurtle)); err != nil {
		t.Fatal(err)
	}
	cands, info, err := e.Search([]string{"2006", "cimiano", "aifb"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 || !info.Guaranteed {
		t.Fatalf("candidates=%d guaranteed=%v", len(cands), info.Guaranteed)
	}
	rs, err := e.Execute(cands[0])
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 {
		t.Fatalf("answers = %d, want 1", rs.Len())
	}
}

func TestPublicAPIUnmatchedError(t *testing.T) {
	e := repro.New(repro.Config{})
	if _, err := e.LoadTurtle(strings.NewReader(rdf.Fig1ExampleTurtle)); err != nil {
		t.Fatal(err)
	}
	_, _, err := e.Search([]string{"zzzzqqqq"})
	var ue *repro.UnmatchedKeywordsError
	if !errors.As(err, &ue) {
		t.Fatalf("want UnmatchedKeywordsError, got %v", err)
	}
}

func TestScoringConstantsDistinct(t *testing.T) {
	if repro.ScoringPathLength == repro.ScoringPopularity ||
		repro.ScoringPopularity == repro.ScoringMatching {
		t.Fatal("scoring constants must be distinct")
	}
}
